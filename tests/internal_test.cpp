#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "internal/insort.h"
#include "internal/loser_tree.h"
#include "internal/radix_partition.h"
#include "util/generators.h"
#include "util/rng.h"

namespace pdm {
namespace {

// ---------------------------------------------------------------- insort

class InternalSortDist : public ::testing::TestWithParam<Dist> {};

TEST_P(InternalSortDist, MatchesStdSort) {
  Rng rng(42);
  auto v = make_keys(5000, GetParam(), rng);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  internal_sort(std::span<u64>(v));
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(AllDists, InternalSortDist,
                         ::testing::Values(Dist::kUniform, Dist::kPermutation,
                                           Dist::kSorted, Dist::kReverse,
                                           Dist::kFewDistinct, Dist::kZipf,
                                           Dist::kAllEqual,
                                           Dist::kNearlySorted),
                         [](const auto& info) {
                           std::string s = dist_name(info.param);
                           std::replace(s.begin(), s.end(), '-', '_');
                           return s;
                         });

TEST(InternalSort, ParallelPathMatchesSerial) {
  ThreadPool pool(4);
  Rng rng(7);
  for (usize n : {usize{1} << 15, usize{1} << 17, (usize{1} << 16) + 12345}) {
    auto v = make_keys(n, Dist::kUniform, rng);
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    std::vector<u64> scratch(n);
    internal_sort(std::span<u64>(v), std::less<u64>{}, &pool,
                  std::span<u64>(scratch));
    EXPECT_EQ(v, expect) << "n=" << n;
  }
}

TEST(InternalSort, ParallelWithCustomComparator) {
  ThreadPool pool(4);
  Rng rng(9);
  auto v = make_keys(usize{1} << 16, Dist::kUniform, rng);
  auto expect = v;
  std::sort(expect.begin(), expect.end(), std::greater<u64>{});
  std::vector<u64> scratch(v.size());
  internal_sort(std::span<u64>(v), std::greater<u64>{}, &pool,
                std::span<u64>(scratch));
  EXPECT_EQ(v, expect);
}

TEST(InternalSort, EmptyAndSingle) {
  std::vector<u64> v;
  internal_sort(std::span<u64>(v));
  EXPECT_TRUE(v.empty());
  v = {42};
  internal_sort(std::span<u64>(v));
  EXPECT_EQ(v[0], 42u);
}

// ------------------------------------------------------------ loser tree

TEST(LoserTree, MergesTwoSources) {
  std::vector<std::vector<u64>> src{{1, 4, 7}, {2, 3, 9}};
  LoserTree<u64> tree(2);
  std::vector<usize> pos(2, 1);
  tree.set_initial(0, src[0][0]);
  tree.set_initial(1, src[1][0]);
  tree.build();
  std::vector<u64> out;
  while (!tree.empty()) {
    const usize s = tree.min_source();
    out.push_back(tree.min_value());
    if (pos[s] < src[s].size()) {
      tree.replace_min(src[s][pos[s]++]);
    } else {
      tree.exhaust_min();
    }
  }
  EXPECT_EQ(out, (std::vector<u64>{1, 2, 3, 4, 7, 9}));
}

class LoserTreeK : public ::testing::TestWithParam<usize> {};

TEST_P(LoserTreeK, MatchesStdMerge) {
  const usize k = GetParam();
  Rng rng(k * 31 + 1);
  std::vector<std::vector<u64>> src(k);
  std::vector<u64> all;
  for (usize i = 0; i < k; ++i) {
    const usize len = static_cast<usize>(rng.below(50));
    src[i] = make_keys(len, Dist::kUniform, rng);
    std::sort(src[i].begin(), src[i].end());
    all.insert(all.end(), src[i].begin(), src[i].end());
  }
  std::sort(all.begin(), all.end());

  LoserTree<u64> tree(k);
  std::vector<usize> pos(k, 0);
  for (usize i = 0; i < k; ++i) {
    if (!src[i].empty()) {
      tree.set_initial(i, src[i][0]);
      pos[i] = 1;
    }
  }
  tree.build();
  std::vector<u64> out;
  while (!tree.empty()) {
    const usize s = tree.min_source();
    out.push_back(tree.min_value());
    if (pos[s] < src[s].size()) {
      tree.replace_min(src[s][pos[s]++]);
    } else {
      tree.exhaust_min();
    }
  }
  EXPECT_EQ(out, all);
}

INSTANTIATE_TEST_SUITE_P(Fanins, LoserTreeK,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 31, 64));

// Regression for the replay() tie-break: better(cur, other) used to prefer
// the incumbent path on ties, so after the first replacement equal keys
// could surface from a higher source index first. With ties broken by
// lower source index, a duplicate-heavy merge must drain equal keys in
// (source, position) order: whenever heads tie, the lowest source pops,
// and since each source is internally ordered, every equal-key group in
// the output is sorted by source index, then by position within source.
TEST(LoserTree, StableBySourceIndexUnderHeavyDuplicates) {
  struct Tagged {
    u64 key = 0;
    u32 src = 0;
    u32 pos = 0;
  };
  struct KeyLess {
    bool operator()(const Tagged& a, const Tagged& b) const {
      return a.key < b.key;
    }
  };
  for (u64 seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const usize k = 2 + static_cast<usize>(rng.below(14));
    std::vector<std::vector<Tagged>> src(k);
    for (usize i = 0; i < k; ++i) {
      const usize len = 20 + static_cast<usize>(rng.below(60));
      std::vector<u64> keys(len);
      for (auto& x : keys) x = rng.below(5);  // ~len/5 duplicates per key
      std::sort(keys.begin(), keys.end());
      for (usize p = 0; p < len; ++p) {
        src[i].push_back(
            Tagged{keys[p], static_cast<u32>(i), static_cast<u32>(p)});
      }
    }
    LoserTree<Tagged, KeyLess> tree(k);
    std::vector<usize> pos(k, 1);
    for (usize i = 0; i < k; ++i) tree.set_initial(i, src[i][0]);
    tree.build();
    std::vector<Tagged> out;
    while (!tree.empty()) {
      const usize s = tree.min_source();
      out.push_back(tree.min_value());
      if (pos[s] < src[s].size()) {
        tree.replace_min(src[s][pos[s]++]);
      } else {
        tree.exhaust_min();
      }
    }
    for (usize i = 1; i < out.size(); ++i) {
      ASSERT_LE(out[i - 1].key, out[i].key) << "disorder at " << i;
      if (out[i - 1].key == out[i].key) {
        const bool stable =
            out[i - 1].src < out[i].src ||
            (out[i - 1].src == out[i].src && out[i - 1].pos < out[i].pos);
        ASSERT_TRUE(stable) << "unstable tie at " << i << ": ("
                            << out[i - 1].src << "," << out[i - 1].pos
                            << ") before (" << out[i].src << "," << out[i].pos
                            << ")";
      }
    }
  }
}

TEST(LoserTree, AllSourcesEmpty) {
  LoserTree<u64> tree(4);
  tree.build();
  EXPECT_TRUE(tree.empty());
}

TEST(LoserTree, StableOnTies) {
  // Equal keys: the lower source index must win (stability by source).
  LoserTree<u64> tree(3);
  tree.set_initial(0, 5);
  tree.set_initial(1, 5);
  tree.set_initial(2, 5);
  tree.build();
  EXPECT_EQ(tree.min_source(), 0u);
  tree.exhaust_min();
  EXPECT_EQ(tree.min_source(), 1u);
  tree.exhaust_min();
  EXPECT_EQ(tree.min_source(), 2u);
}

// -------------------------------------------------------- radix partition

TEST(RadixPartition, DigitExtraction) {
  EXPECT_EQ(digit_of<u64>(0b1011'0110, 0, 4), 0b0110u);
  EXPECT_EQ(digit_of<u64>(0b1011'0110, 4, 4), 0b1011u);
  EXPECT_EQ(digit_of<u64>(~u64{0}, 0, 64), ~u64{0});
}

TEST(RadixPartition, CountsSumToN) {
  Rng rng(3);
  auto v = make_int_keys(1000, 256, rng);
  std::vector<u64> counts(16);
  count_digits<u64>(std::span<const u64>(v), 4, 4, std::span<u64>(counts));
  u64 total = 0;
  for (u64 c : counts) total += c;
  EXPECT_EQ(total, 1000u);
}

TEST(RadixPartition, PartitionGroupsByDigit) {
  Rng rng(4);
  auto v = make_int_keys(4096, 1u << 12, rng);
  std::vector<u64> out(v.size());
  auto bounds = partition_by_digit<u64>(std::span<const u64>(v),
                                        std::span<u64>(out), 8, 4);
  ASSERT_EQ(bounds.size(), 17u);
  EXPECT_EQ(bounds.back(), v.size());
  for (usize d = 0; d < 16; ++d) {
    for (u64 i = bounds[d]; i < bounds[d + 1]; ++i) {
      EXPECT_EQ(digit_of<u64>(out[i], 8, 4), d);
    }
  }
  // Multiset preserved.
  auto a = v;
  auto b = out;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(RadixPartition, ScatterIsStableWithinDigit) {
  std::vector<u64> v{0x10, 0x20, 0x11, 0x21, 0x12};
  std::vector<u64> out(v.size());
  auto bounds = partition_by_digit<u64>(std::span<const u64>(v),
                                        std::span<u64>(out), 4, 4);
  // digit = high nibble; within digit 1 the order 0x10, 0x11, 0x12 holds.
  EXPECT_EQ(out[bounds[1]], 0x10u);
  EXPECT_EQ(out[bounds[1] + 1], 0x11u);
  EXPECT_EQ(out[bounds[1] + 2], 0x12u);
}

}  // namespace
}  // namespace pdm
