// The paper (§4) notes that "Columnsort, odd-even merge sort, and the
// s^2-way merge sort algorithms are all special cases of LMM sort". These
// tests exercise lmm_merge at exactly those degenerate parameters and
// check the structural properties the claims rest on.
#include <gtest/gtest.h>

#include "primitives/lmm_merge.h"
#include "test_support.h"

namespace pdm {
namespace {

using test::Geometry;

std::vector<StripedRun<u64>> make_sorted_runs(PdmContext& ctx, usize l,
                                              u64 run_len, u64 seed,
                                              std::vector<u64>* all) {
  Rng rng(seed);
  std::vector<StripedRun<u64>> runs;
  for (usize i = 0; i < l; ++i) {
    auto v = make_keys(static_cast<usize>(run_len), Dist::kUniform, rng);
    std::sort(v.begin(), v.end());
    runs.push_back(write_input_run<u64>(ctx, std::span<const u64>(v),
                                        static_cast<u32>(i)));
    if (all) all->insert(all->end(), v.begin(), v.end());
  }
  ctx.io().reset_stats();
  return runs;
}

// Batcher's odd-even merge = (l=2, m=2)-merge: unshuffle both sequences
// into odd/even parts, merge recursively (here: in one memory load), and
// clean with a window — the dirty length bound l*m = 4 is the classical
// "compare adjacent pairs after interleaving" step.
TEST(LmmSpecialCases, OddEvenMergeIsTwoTwoMerge) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  std::vector<u64> all;
  auto runs = make_sorted_runs(*ctx, 2, 128, 1, &all);
  std::sort(all.begin(), all.end());
  StripedRun<u64> out(*ctx, 0);
  RunSink<u64> sink(out);
  LmmOptions opt;
  opt.mem_records = 256;
  opt.m = 2;
  auto oc = lmm_merge<u64>(
      *ctx, std::span<const StripedRun<u64>>(runs.data(), 2), sink, opt);
  EXPECT_TRUE(oc.ok);
  EXPECT_EQ(out.read_all(), all);
}

// The s^2-way merge (Thompson & Kung): l = m = s. At s = B = sqrt(M) this
// is exactly the ThreePass2 configuration; here we sweep smaller s.
class SSquaredMerge : public ::testing::TestWithParam<u64> {};

TEST_P(SSquaredMerge, MergesWithSEqualsM) {
  const u64 s = GetParam();
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  std::vector<u64> all;
  const u64 run_len = 16 * s;  // m = s must divide the run length
  auto runs = make_sorted_runs(*ctx, static_cast<usize>(s), run_len,
                               s * 13 + 1, &all);
  std::sort(all.begin(), all.end());
  StripedRun<u64> out(*ctx, 0);
  RunSink<u64> sink(out);
  LmmOptions opt;
  opt.mem_records = 256;
  opt.m = s;
  auto oc = lmm_merge<u64>(
      *ctx, std::span<const StripedRun<u64>>(runs.data(), runs.size()), sink,
      opt);
  EXPECT_TRUE(oc.ok);
  EXPECT_EQ(out.read_all(), all);
}

INSTANTIATE_TEST_SUITE_P(SValues, SSquaredMerge, ::testing::Values(2, 4, 8));

// The dirty-sequence bound underlying every LMM configuration: after
// merging the stride-m parts and re-shuffling, no record sits more than
// l*m positions from its sorted place. We verify the bound empirically by
// running the merge WITHOUT the cleanup (reconstructing the shuffled Z
// by hand) across shapes.
TEST(LmmSpecialCases, DirtyBoundHolds) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const usize l = 2 + static_cast<usize>(rng.below(6));
    const u64 m = 1 + rng.below(6);
    const u64 p = 8 + rng.below(8);  // part length
    const u64 run_len = m * p;
    // Build l sorted runs in memory.
    std::vector<std::vector<u64>> runs(l);
    for (auto& r : runs) {
      r = make_keys(static_cast<usize>(run_len), Dist::kUniform, rng);
      std::sort(r.begin(), r.end());
    }
    // Unshuffle, merge part-groups, shuffle.
    std::vector<std::vector<u64>> merged(m);
    for (u64 j = 0; j < m; ++j) {
      for (usize i = 0; i < l; ++i) {
        for (u64 t = j; t < run_len; t += m) merged[j].push_back(runs[i][t]);
      }
      std::sort(merged[j].begin(), merged[j].end());
    }
    std::vector<u64> z;
    for (u64 t = 0; t < l * p; ++t) {
      for (u64 j = 0; j < m; ++j) z.push_back(merged[j][t]);
    }
    auto sorted = z;
    std::sort(sorted.begin(), sorted.end());
    // Max displacement <= l*m (the LMM lemma; paper §4 asserts the dirty
    // sequence length is l*m).
    std::map<u64, usize> pos;
    for (usize i = 0; i < sorted.size(); ++i) pos[sorted[i]] = i;
    u64 max_d = 0;
    for (usize i = 0; i < z.size(); ++i) {
      const usize want = pos[z[i]];
      max_d = std::max<u64>(max_d, want > i ? want - i : i - want);
    }
    EXPECT_LE(max_d, static_cast<u64>(l) * m)
        << "l=" << l << " m=" << m << " p=" << p;
  }
}

}  // namespace
}  // namespace pdm
