// Cross-module integration tests: every sorter on the file-backed disk
// array, randomized-shape fuzzing through the planner, simulated-time
// accounting, and end-to-end memory-budget enforcement.
#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/columnsort.h"
#include "baselines/multiway_merge.h"
#include "core/adaptive.h"
#include "core/integer_sort.h"
#include "core/radix_sort.h"
#include "test_support.h"

namespace pdm {
namespace {

using test::Geometry;

class FileBackendSorters : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/pdmsort_it_" +
           std::to_string(
               ::testing::UnitTest::GetInstance()->random_seed());
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(FileBackendSorters, ThreePassLmmOnFiles) {
  const u64 mem = 1024;
  auto ctx = make_file_context(8, 32 * sizeof(u64), dir_);
  Rng rng(1);
  auto data = make_keys(static_cast<usize>(mem * 32), Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ThreePassLmmOptions opt;
  opt.mem_records = mem;
  auto res = three_pass_lmm_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  test::expect_passes_near(res.report, 3.0);
}

TEST_F(FileBackendSorters, ExpectedTwoPassOnFiles) {
  const u64 mem = 1024;
  auto ctx = make_file_context(8, 32 * sizeof(u64), dir_);
  Rng rng(2);
  auto data = make_keys(static_cast<usize>(4 * mem), Dist::kPermutation, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ExpectedTwoPassOptions opt;
  opt.mem_records = mem;
  auto res = expected_two_pass_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
}

TEST_F(FileBackendSorters, MeshOnFiles) {
  const u64 mem = 256;
  auto ctx = make_file_context(4, 16 * sizeof(u64), dir_);
  Rng rng(3);
  auto data = make_keys(static_cast<usize>(mem * 16), Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ThreePassMeshOptions opt;
  opt.mem_records = mem;
  auto res = three_pass_mesh_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
}

TEST_F(FileBackendSorters, SevenPassOnFiles) {
  const u64 mem = 256;
  auto ctx = make_file_context(4, 16 * sizeof(u64), dir_);
  Rng rng(4);
  auto data = make_keys(static_cast<usize>(mem * mem), Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  SevenPassOptions opt;
  opt.mem_records = mem;
  auto res = seven_pass_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  test::expect_passes_near(res.report, 7.0, 0.2);
}

TEST_F(FileBackendSorters, RadixOnFiles) {
  const u64 mem = 256;
  auto ctx = make_file_context(4, 16 * sizeof(u64), dir_);
  Rng rng(5);
  auto data = make_int_keys(8192, 1u << 16, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  RadixSortOptions opt;
  opt.mem_records = mem;
  opt.key_bits = 16;
  auto res = radix_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
}

TEST_F(FileBackendSorters, SameScheduleAsMemoryBackend) {
  // Oblivious sorts must produce the identical I/O schedule on both
  // backends — the medium is irrelevant to the model.
  const u64 mem = 256;
  Rng rng(6);
  auto data = make_keys(4096, Dist::kUniform, rng);
  u64 h_mem, h_file;
  {
    auto ctx = make_memory_context(4, 16 * sizeof(u64));
    auto in = test::stage_input<u64>(*ctx, data);
    ThreePassLmmOptions opt;
    opt.mem_records = mem;
    (void)three_pass_lmm_sort<u64>(*ctx, in, opt);
    h_mem = ctx->stats().schedule_hash;
  }
  {
    auto ctx = make_file_context(4, 16 * sizeof(u64), dir_);
    auto in = test::stage_input<u64>(*ctx, data);
    ThreePassLmmOptions opt;
    opt.mem_records = mem;
    (void)three_pass_lmm_sort<u64>(*ctx, in, opt);
    h_file = ctx->stats().schedule_hash;
  }
  EXPECT_EQ(h_mem, h_file);
}

// Randomized shape fuzz: random geometries and sizes through the planner;
// output must always be sorted and the pass count within the plan's
// expectation plus fallback slack.
class PlannerFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(PlannerFuzz, RandomShapes) {
  Rng shape_rng(GetParam() * 7919 + 3);
  const u64 mems[] = {64, 256, 1024};
  const u64 mem = mems[shape_rng.below(3)];
  const u64 s = isqrt(mem);
  const Geometry g{mem, s, static_cast<u32>(std::max<u64>(1, s / 4))};
  auto ctx = test::make_ctx<u64>(g, GetParam());
  // N: random multiple of M up to M^1.5 (always plannable).
  const u64 n = mem * (1 + shape_rng.below(s));
  Rng rng(GetParam());
  const Dist dists[] = {Dist::kUniform, Dist::kPermutation, Dist::kZipf,
                        Dist::kFewDistinct, Dist::kReverse};
  const Dist dist = dists[shape_rng.below(5)];
  auto data = make_keys(static_cast<usize>(n), dist, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  AdaptiveOptions opt;
  opt.mem_records = mem;
  auto res = pdm_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  EXPECT_LE(res.report.passes, 8.0) << res.report.algorithm;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerFuzz, ::testing::Range(u64{1}, u64{26}));

TEST(SimTime, ProportionalToRoundsAndBlockSize) {
  const CostModel cost;
  auto ctx = make_memory_context(4, 16 * sizeof(u64));
  Rng rng(1);
  auto data = make_keys(4096, Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ThreePassLmmOptions opt;
  opt.mem_records = 256;
  auto res = three_pass_lmm_sort<u64>(*ctx, in, opt);
  const double expect =
      static_cast<double>(res.report.io.total_ops()) *
      cost.round_cost(16 * sizeof(u64));
  EXPECT_NEAR(res.report.sim_seconds, expect, 1e-9);
}

TEST(SimTime, FewerPassesMeansLessSimTime) {
  const u64 mem = 1024;
  Rng rng(2);
  auto data = make_keys(static_cast<usize>(4 * mem), Dist::kPermutation, rng);
  double t2, t3;
  {
    auto ctx = make_memory_context(8, 32 * sizeof(u64));
    auto in = test::stage_input<u64>(*ctx, data);
    ExpectedTwoPassOptions opt;
    opt.mem_records = mem;
    auto res = expected_two_pass_sort<u64>(*ctx, in, opt);
    ASSERT_FALSE(res.report.fallback_taken);
    t2 = res.report.sim_seconds;
  }
  {
    auto ctx = make_memory_context(8, 32 * sizeof(u64));
    auto in = test::stage_input<u64>(*ctx, data);
    ThreePassLmmOptions opt;
    opt.mem_records = mem;
    t3 = three_pass_lmm_sort<u64>(*ctx, in, opt).report.sim_seconds;
  }
  EXPECT_LT(t2, t3);
}

TEST(BudgetIntegration, MeshWithinDocumentedSlack) {
  // DESIGN.md: mesh passes peak at ~2M (+ staging).
  const auto g = Geometry::square(1024);
  auto ctx = test::make_ctx<u64>(g);
  const usize limit = static_cast<usize>(2.25 * 1024 * sizeof(u64)) +
                      2 * g.disks * g.rpb * sizeof(u64);
  ctx->budget().set_limit(limit);
  Rng rng(3);
  auto data = make_keys(static_cast<usize>(1024 * 32), Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ThreePassMeshOptions opt;
  opt.mem_records = 1024;
  auto res = three_pass_mesh_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
}

TEST(BudgetIntegration, SevenPassWithinDocumentedSlack) {
  // SevenPass peaks in stage-1 cleanup: 2M window + M unshuffle staging.
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  const usize limit = static_cast<usize>(3.5 * 256 * sizeof(u64)) +
                      2 * g.disks * g.rpb * sizeof(u64);
  ctx->budget().set_limit(limit);
  Rng rng(4);
  auto data = make_keys(static_cast<usize>(256 * 256), Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  SevenPassOptions opt;
  opt.mem_records = 256;
  auto res = seven_pass_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  EXPECT_LE(res.report.peak_memory_bytes, limit);
}

TEST(BudgetIntegration, TooSmallBudgetThrowsCleanly) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  ctx->budget().set_limit(256 * sizeof(u64));  // only 1M — not enough
  Rng rng(5);
  auto data = make_keys(4096, Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ThreePassLmmOptions opt;
  opt.mem_records = 256;
  EXPECT_THROW(three_pass_lmm_sort<u64>(*ctx, in, opt), Error);
}

TEST(SchedulerFuzz, RoundsEqualMaxPerDiskLoad) {
  // Property: for any request batch, parallel ops == max per-disk count.
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const u32 disks = static_cast<u32>(1 + rng.below(16));
    auto ctx = make_memory_context(disks, 64);
    const usize nreq = static_cast<usize>(1 + rng.below(200));
    std::vector<std::byte> buf(64);
    std::vector<WriteReq> reqs;
    std::vector<u64> per_disk(disks, 0);
    for (usize i = 0; i < nreq; ++i) {
      const u32 d = static_cast<u32>(rng.below(disks));
      reqs.push_back(WriteReq{{d, per_disk[d]}, buf.data()});
      ++per_disk[d];
    }
    const u64 rounds = ctx->io().write(reqs);
    const u64 expect = *std::max_element(per_disk.begin(), per_disk.end());
    EXPECT_EQ(rounds, expect);
  }
}

TEST(KvIntegration, SevenPassWithPayloads) {
  const auto g = Geometry::square(256);
  auto ctx = make_memory_context(g.disks, g.rpb * sizeof(KV64));
  Rng rng(7);
  auto data = make_kv(static_cast<usize>(256 * 16 * 2), Dist::kUniform, rng);
  auto in = test::stage_input<KV64>(*ctx, data);
  SevenPassOptions opt;
  opt.mem_records = 256;
  auto res = seven_pass_sort<KV64>(*ctx, in, opt);
  test::expect_key_sorted_permutation<KV64>(res.output, data);
}

TEST(KvIntegration, MeshWithPayloads) {
  const auto g = Geometry::square(256);
  auto ctx = make_memory_context(g.disks, g.rpb * sizeof(KV64));
  Rng rng(8);
  auto data = make_kv(static_cast<usize>(256 * 16), Dist::kUniform, rng);
  auto in = test::stage_input<KV64>(*ctx, data);
  ThreePassMeshOptions opt;
  opt.mem_records = 256;
  auto res = three_pass_mesh_sort<KV64>(*ctx, in, opt);
  test::expect_key_sorted_permutation<KV64>(res.output, data);
}

TEST(KvIntegration, ColumnsortWithPayloads) {
  const u64 mem = 1024;
  const auto g = Geometry::square(mem);
  auto ctx = make_memory_context(g.disks, g.rpb * sizeof(KV64));
  const u64 n = max_columnsort_n(mem, g.rpb);
  Rng rng(9);
  auto data = make_kv(static_cast<usize>(n), Dist::kUniform, rng);
  auto in = test::stage_input<KV64>(*ctx, data);
  ColumnsortOptions opt;
  opt.mem_records = mem;
  auto res = columnsort_cc_sort<KV64>(*ctx, in, opt);
  test::expect_key_sorted_permutation<KV64>(res.output, data);
}

}  // namespace
}  // namespace pdm
