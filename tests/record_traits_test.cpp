// KeyTraits projections: signed integrals (bias map) and KeyPair
// composite keys (lexicographic packing), including an end-to-end radix
// sort over signed keys to prove the projection composes with the
// key-driven sorters.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/radix_sort.h"
#include "pdm/record.h"
#include "test_support.h"
#include "util/rng.h"

namespace pdm {
namespace {

using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;

template <class T>
void expect_order_preserving(const std::vector<T>& values) {
  for (usize i = 0; i < values.size(); ++i) {
    for (usize j = 0; j < values.size(); ++j) {
      EXPECT_EQ(values[i] < values[j],
                record_key(values[i]) < record_key(values[j]))
          << "pair (" << +values[i] << ", " << +values[j] << ")";
      EXPECT_EQ(values[i] == values[j],
                record_key(values[i]) == record_key(values[j]));
    }
  }
}

TEST(SignedKeyTraits, ExhaustiveI8)
{
  std::vector<i8> all;
  for (int v = -128; v <= 127; ++v) all.push_back(static_cast<i8>(v));
  expect_order_preserving(all);
  // The bias map stays within the type's width.
  for (i8 v : all) EXPECT_LT(record_key(v), u64{1} << 8);
}

TEST(SignedKeyTraits, BoundaryAndRandomWiderTypes)
{
  expect_order_preserving<i16>(
      {std::numeric_limits<i16>::min(), -1000, -1, 0, 1, 1000,
       std::numeric_limits<i16>::max()});
  expect_order_preserving<i32>(
      {std::numeric_limits<i32>::min(), -70000, -1, 0, 1, 70000,
       std::numeric_limits<i32>::max()});
  std::vector<i64> v64{std::numeric_limits<i64>::min(), -1, 0, 1,
                       std::numeric_limits<i64>::max()};
  Rng rng(7);
  for (int i = 0; i < 64; ++i) v64.push_back(static_cast<i64>(rng.next()));
  expect_order_preserving(v64);
}

TEST(KeyPairTraits, LexicographicOrderMatchesKeyOrder)
{
  using P = KeyPair<i32, u32>;
  static_assert(Record<P>);
  std::vector<P> vals;
  Rng rng(11);
  const std::vector<i32> firsts{std::numeric_limits<i32>::min(), -5, 0, 5,
                                std::numeric_limits<i32>::max()};
  const std::vector<u32> seconds{0, 1, 77, std::numeric_limits<u32>::max()};
  for (i32 f : firsts)
    for (u32 s : seconds) vals.push_back(P{f, s});
  for (int i = 0; i < 200; ++i) {
    vals.push_back(P{static_cast<i32>(rng.next()),
                     static_cast<u32>(rng.next())});
  }
  for (const P& a : vals) {
    for (const P& b : vals) {
      EXPECT_EQ(a < b, record_key(a) < record_key(b));
      EXPECT_EQ(a == b, record_key(a) == record_key(b));
    }
  }
}

TEST(KeyPairTraits, NestedPairsPackByWidth)
{
  using Inner = KeyPair<u16, u16>;
  using P = KeyPair<Inner, u32>;
  static_assert(Record<P>);
  const P a{{1, 2}, 3};
  const P b{{1, 3}, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(record_key(a), record_key(b));
  // Inner pack occupies the top 32 bits.
  EXPECT_EQ(record_key(a) >> 32, (u64{1} << 16) | 2);
}

TEST(SignedKeyTraits, RadixSortSortsSignedKeys)
{
  const auto g = test::Geometry::square(1024);
  auto ctx = test::make_ctx<i64>(g);
  Rng rng(3);
  std::vector<i64> data(1024 * 8);
  for (auto& x : data) {
    x = static_cast<i64>(rng.next()) >> 20;  // mixed-sign, 44-bit magnitude
  }
  auto in = test::stage_input<i64>(*ctx, data);
  RadixSortOptions opt;
  opt.mem_records = 1024;
  opt.key_bits = 64;
  auto res = radix_sort<i64>(*ctx, in, opt);
  test::expect_sorted_output<i64>(res.output, data);
}

}  // namespace
}  // namespace pdm
