#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "util/generators.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace pdm {
namespace {

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(1, 1), 1u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
}

TEST(MathUtil, RoundUpDown) {
  EXPECT_EQ(round_up(10, 4), 12u);
  EXPECT_EQ(round_up(12, 4), 12u);
  EXPECT_EQ(round_down(10, 4), 8u);
  EXPECT_EQ(round_down(12, 4), 12u);
}

TEST(MathUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

TEST(MathUtil, Ilog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(ilog2(1023), 9u);
  EXPECT_EQ(ilog2_ceil(1), 0u);
  EXPECT_EQ(ilog2_ceil(1023), 10u);
  EXPECT_EQ(ilog2_ceil(1024), 10u);
  EXPECT_EQ(ilog2_ceil(1025), 11u);
}

TEST(MathUtil, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(15), 3u);
  EXPECT_EQ(isqrt(16), 4u);
  EXPECT_EQ(isqrt(1u << 20), 1024u);
  const u64 big = u64{1} << 40;
  EXPECT_EQ(isqrt(big), u64{1} << 20);
  EXPECT_EQ(isqrt(big - 1), (u64{1} << 20) - 1);
}

TEST(MathUtil, LambdaFactorMonotone) {
  // lambda grows with alpha and with M.
  EXPECT_LT(lambda_factor(1 << 10, 1.0), lambda_factor(1 << 10, 2.0));
  EXPECT_LT(lambda_factor(1 << 10, 1.0), lambda_factor(1 << 20, 1.0));
  EXPECT_GT(lambda_factor(1 << 10, 1.0), 1.0);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowInRange) {
  Rng rng(7);
  for (u64 bound : {1ull, 2ull, 7ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, Uniform01Range) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<u32> v(257);
  std::iota(v.begin(), v.end(), 0u);
  shuffle(v, rng);
  std::set<u32> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), v.size());
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));
}

TEST(Generators, PermutationHasAllValues) {
  Rng rng(5);
  auto v = make_keys(1000, Dist::kPermutation, rng);
  std::set<u64> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 999u);
}

TEST(Generators, SortedAndReverse) {
  Rng rng(5);
  auto s = make_keys(100, Dist::kSorted, rng);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  auto r = make_keys(100, Dist::kReverse, rng);
  EXPECT_TRUE(std::is_sorted(r.rbegin(), r.rend()));
}

TEST(Generators, FewDistinctIsSmallAlphabet) {
  Rng rng(5);
  auto v = make_keys(1000, Dist::kFewDistinct, rng);
  std::set<u64> s(v.begin(), v.end());
  EXPECT_LE(s.size(), 7u);
}

TEST(Generators, IntKeysInRange) {
  Rng rng(6);
  auto v = make_int_keys(1000, 64, rng);
  for (u64 k : v) EXPECT_LT(k, 64u);
  auto w = make_skewed_int_keys(1000, 64, rng);
  for (u64 k : w) EXPECT_LT(k, 64u);
}

TEST(Generators, KvPayloadTracksIndex) {
  Rng rng(8);
  auto v = make_kv(100, Dist::kUniform, rng);
  for (usize i = 0; i < v.size(); ++i) EXPECT_EQ(v[i].value, i);
}

TEST(Generators, RotatedIsPermutation) {
  auto v = make_rotated(100, 37);
  std::set<u64> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(v[0], 37u);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](usize lo, usize hi) {
    for (usize i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](usize lo, usize) {
                          if (lo == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(Table, RendersMarkdown) {
  Table t({"a", "bb"});
  t.row().cell("x").cell(u64{42});
  t.row().cell(3.14159, 2).cell(true);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_NE(s.find("yes"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(fmt_double(2.5000, 3), "2.5");
  EXPECT_EQ(fmt_double(2.0, 3), "2");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1500), "1.50K");
  EXPECT_EQ(fmt_count(2500000), "2.50M");
}

}  // namespace
}  // namespace pdm
