// Property harness for order-adaptive run formation (ISSUE 10): the
// replacement-selection and up/down modes, the presortedness probe, the
// planner integration, and the kFixed determinism bar.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/adaptive.h"
#include "pdm/memory_backend.h"
#include "service/sort_service.h"
#include "test_support.h"

namespace pdm {
namespace {

using test::Geometry;

constexpr Dist kOrderWorkloads[] = {
    Dist::kUniform,    Dist::kSorted,       Dist::kReverse,
    Dist::kClustered,  Dist::kNearSortedDisplaced,
    Dist::kFewDistinct};

std::vector<u64> run_lengths(const std::vector<StripedRun<u64>>& runs) {
  std::vector<u64> lens;
  lens.reserve(runs.size());
  for (const auto& r : runs) lens.push_back(r.size());
  return lens;
}

struct ModeCase {
  RunFormationMode mode;
  Dist dist;
};

class AdaptiveRunFormation : public ::testing::TestWithParam<ModeCase> {};

// Core properties of the adaptive modes on every workload: each emitted
// run is sorted, together they cover the input, run lengths respect the
// replacement-selection lower bound, and the whole pass is deterministic
// per seed (byte-identical runs on a re-run).
TEST_P(AdaptiveRunFormation, RunsSortedCoverInputWithLengthBounds) {
  const auto [mode, dist] = GetParam();
  const auto g = Geometry::square(256);
  const usize n = 2048;  // 8 memory loads
  Rng rng(99);
  const auto data = make_keys(n, dist, rng);

  auto form = [&](PdmContext& ctx, const StripedRun<u64>& in) {
    RunFormationOptions opt;
    opt.run_len = g.mem;
    opt.mode = mode;
    return form_runs_flat<u64>(ctx, in, opt);
  };

  auto ctx = test::make_ctx<u64>(g);
  auto in = test::stage_input<u64>(*ctx, data);
  auto runs = form(*ctx, in);
  ASSERT_FALSE(runs.empty());

  std::vector<u64> all;
  for (auto& r : runs) {
    auto v = r.read_all();
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()))
        << dist_name(dist) << "/" << run_formation_mode_name(mode);
    all.insert(all.end(), v.begin(), v.end());
  }
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, expect);

  // Length bounds. Replacement selection: when a run opens, all M heap
  // slots carry its tag, so every run but the last holds >= M records.
  // Up/down: a descending run's sub-block tail is split off as a mini-run
  // (< B records), leaving the main part >= M - B + 1.
  const auto lens = run_lengths(runs);
  for (usize i = 0; i + 1 < lens.size(); ++i) {
    if (mode == RunFormationMode::kReplacementSelection) {
      EXPECT_GE(lens[i], g.mem) << "run " << i;
    } else {
      EXPECT_TRUE(lens[i] >= g.mem - g.rpb + 1 || lens[i] < g.rpb)
          << "run " << i << " length " << lens[i];
    }
  }
  if (dist == Dist::kSorted) EXPECT_EQ(runs.size(), 1u);
  if (dist == Dist::kNearSortedDisplaced) {
    // Window n/32 = 64 <= M/2: the heap absorbs all displacement.
    EXPECT_EQ(runs.size(), 1u);
  }
  if (dist == Dist::kReverse && mode == RunFormationMode::kUpDown) {
    // Run 0 (ascending) drains the initial heap; run 1 (descending)
    // swallows the entire remainder, plus at most one mini-run.
    EXPECT_LE(runs.size(), 3u);
  }

  // Per-seed determinism: a second pass over identical input in a fresh
  // context yields the same run boundaries and records.
  auto ctx2 = test::make_ctx<u64>(g);
  auto in2 = test::stage_input<u64>(*ctx2, data);
  auto runs2 = form(*ctx2, in2);
  ASSERT_EQ(run_lengths(runs2), lens);
  for (usize i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs2[i].read_all(), runs[i].read_all()) << "run " << i;
  }
}

// End to end: the order-adaptive sorter's output is byte-equal to
// std::sort on every workload, in both modes.
TEST_P(AdaptiveRunFormation, SortMatchesStdSort) {
  const auto [mode, dist] = GetParam();
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(7);
  auto data = make_keys(2048, dist, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  OrderAdaptiveOptions o;
  o.mem_records = g.mem;
  o.mode = mode;
  auto res = order_adaptive_sort<u64>(*ctx, in, o);
  test::expect_sorted_output<u64>(res.output, data);
  EXPECT_EQ(res.report.algorithm, "OrderAdaptive");
  if (dist == Dist::kSorted || dist == Dist::kNearSortedDisplaced) {
    test::expect_passes_near(res.report, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesTimesWorkloads, AdaptiveRunFormation,
    [] {
      std::vector<ModeCase> cases;
      for (auto mode : {RunFormationMode::kReplacementSelection,
                        RunFormationMode::kUpDown}) {
        for (auto dist : kOrderWorkloads) cases.push_back({mode, dist});
      }
      return ::testing::ValuesIn(cases);
    }(),
    [](const ::testing::TestParamInfo<ModeCase>& info) {
      std::string name = run_formation_mode_name(info.param.mode);
      name += "_";
      name += dist_name(info.param.dist);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// The determinism bar: a default-constructed RunFormationOptions is
// kFixed, and two identical kFixed passes produce identical records, op
// and block counts, and the same I/O schedule hash.
TEST(AdaptiveRunFormationBar, FixedDefaultIsDeterministic) {
  EXPECT_EQ(RunFormationOptions{}.mode, RunFormationMode::kFixed);
  const auto g = Geometry::square(256);
  Rng rng(5);
  const auto data = make_keys(2048, Dist::kUniform, rng);
  IoStats first;
  std::vector<std::vector<u64>> first_runs;
  for (int rep = 0; rep < 2; ++rep) {
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, data);
    RunFormationOptions opt;
    opt.run_len = g.mem;
    if (rep == 1) opt.mode = RunFormationMode::kFixed;  // explicit == default
    auto runs = form_runs_flat<u64>(*ctx, in, opt);
    std::vector<std::vector<u64>> rec;
    for (auto& r : runs) rec.push_back(r.read_all());
    // read_all above counts reads; compare stats taken right after the pass.
    if (rep == 0) {
      first = ctx->stats();
      first_runs = std::move(rec);
    } else {
      EXPECT_EQ(rec, first_runs);
      EXPECT_EQ(ctx->stats().schedule_hash, first.schedule_hash);
      EXPECT_EQ(ctx->stats().total_ops(), first.total_ops());
      EXPECT_EQ(ctx->stats().total_blocks(), first.total_blocks());
    }
  }
}

// ------------------------------------------------------ presortedness probe

TEST(PresortednessProbe, InMemoryEstimates) {
  const u64 mem = 256;
  const usize n = 2048;  // 8 chunks
  Rng rng(11);
  const auto sorted = make_keys(n, Dist::kSorted, rng);
  const auto displaced = make_keys(n, Dist::kNearSortedDisplaced, rng);
  const auto random = make_keys(n, Dist::kUniform, rng);
  EXPECT_EQ(probe_presortedness<u64>(std::span<const u64>(sorted), mem)
                .est_runs,
            1u);
  EXPECT_EQ(probe_presortedness<u64>(std::span<const u64>(displaced), mem)
                .est_runs,
            1u);
  // Random: lag-M pairs invert with probability 1/2, so est ~ N/2M = 4.
  const auto p = probe_presortedness<u64>(std::span<const u64>(random), mem);
  EXPECT_GE(p.est_runs, 2u);
  EXPECT_LE(p.est_runs, 6u);
  // Inputs that fit the heap are one run by definition.
  EXPECT_EQ(probe_presortedness<u64>(std::span<const u64>(random), n * 2)
                .est_runs,
            1u);
}

TEST(PresortednessProbe, OnDiskMatchesInMemoryShape) {
  const auto g = Geometry::square(256);
  Rng rng(13);
  for (Dist d : {Dist::kSorted, Dist::kNearSortedDisplaced, Dist::kUniform}) {
    auto ctx = test::make_ctx<u64>(g);
    const auto data = make_keys(2048, d, rng);
    auto in = test::stage_input<u64>(*ctx, data);
    const auto p = probe_presortedness<u64>(*ctx, in, g.mem);
    if (d == Dist::kUniform) {
      EXPECT_GE(p.est_runs, 2u) << dist_name(d);
    } else {
      EXPECT_EQ(p.est_runs, 1u) << dist_name(d);
    }
    // The probe reads at most M records.
    EXPECT_LE(ctx->stats().blocks_read, g.mem / g.rpb);
  }
}

// ---------------------------------------------------------------- planning

TEST(OrderAdaptivePlanning, NearSortedPlansStrictlyFewerPasses) {
  const u64 mem = 1024, rpb = 32;
  const u64 n = 8 * mem;
  const auto legacy = choose_plan(n, mem, rpb, 1.0);
  const auto probed = choose_plan(n, mem, rpb, 1.0, /*est_runs=*/1);
  EXPECT_EQ(probed.algo, Algo::kOrderAdaptive);
  EXPECT_LT(probed.expected_passes, legacy.expected_passes);
  EXPECT_DOUBLE_EQ(probed.expected_passes, 1.0);
}

TEST(OrderAdaptivePlanning, RandomEstimateTiesKeepLegacyPlan) {
  // Shape where the legacy plan is the two-pass algorithm (N = 8M is
  // within cap_expected_two_pass at M = 4096), so a random probe ties it.
  const u64 mem = 4096, rpb = 64;
  const u64 n = 8 * mem;
  const auto legacy = choose_plan(n, mem, rpb, 1.0);
  ASSERT_EQ(legacy.algo, Algo::kExpectedTwoPass);
  // A random input probes to ~N/2M runs; the adaptive pass count then ties
  // the legacy plan and the tie must keep the legacy choice.
  const auto probed = choose_plan(n, mem, rpb, 1.0, /*est_runs=*/n / (2 * mem));
  EXPECT_EQ(probed.algo, legacy.algo);
  // And an unprobed call (est_runs = 0) never considers the adaptive plan.
  const auto unprobed = choose_plan(n, mem, rpb, 1.0);
  EXPECT_EQ(unprobed.algo, legacy.algo);
}

TEST(OrderAdaptivePlanning, PdmSortProbePath) {
  const auto g = Geometry::square(1024);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(23);
  auto data = make_keys(static_cast<usize>(8 * g.mem),
                        Dist::kNearSortedDisplaced, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  AdaptiveOptions o;
  o.mem_records = g.mem;
  o.probe = true;
  auto res = pdm_sort<u64>(*ctx, in, o);
  test::expect_sorted_output<u64>(res.output, data);
  EXPECT_EQ(res.report.algorithm, "OrderAdaptive");
  // One formation pass plus the O(M) probe read — still well under the
  // legacy two passes.
  EXPECT_LT(res.report.passes, 1.5);
}

// ------------------------------------------------------------------ service

TEST(OrderAdaptiveService, OptInProbePlansOnePassForNearSorted) {
  ServiceConfig cfg;
  cfg.workers = 2;
  SortService svc(std::make_shared<MemoryDiskBackend>(8, 256), cfg);
  Rng rng(31);
  // M = 4096 (B = 32 on the 256-byte-block backend) keeps N = 8M inside
  // the two-pass capacity, so the legacy plan is 2 passes and a random
  // probe (est ~ N/2M = 4 runs, also 2 passes) ties rather than wins.
  const u64 mem = 4096;
  const usize n = static_cast<usize>(8 * mem);

  std::string near_algo, random_algo, plain_algo;
  double near_passes = 0;
  {
    SortJobSpec spec;
    spec.name = "near-sorted-opt-in";
    spec.mem_records = mem;
    spec.order_adaptive = true;
    auto data = make_keys(n, Dist::kNearSortedDisplaced, rng);
    auto expect = data;
    std::sort(expect.begin(), expect.end());
    svc.submit<u64>(std::move(spec), std::move(data), std::less<u64>{},
                    [&, expect = std::move(expect)](const SortResult<u64>& r) {
                      near_algo = r.report.algorithm;
                      near_passes = r.report.passes;
                      EXPECT_EQ(r.output.read_all(), expect);
                    });
  }
  {
    // Random payload under the same opt-in: the probe estimate ties the
    // legacy plan, so the plan (and thus the I/O schedule) is unchanged.
    SortJobSpec spec;
    spec.name = "random-opt-in";
    spec.mem_records = mem;
    spec.order_adaptive = true;
    auto data = make_keys(n, Dist::kUniform, rng);
    svc.submit<u64>(std::move(spec), std::move(data), std::less<u64>{},
                    [&](const SortResult<u64>& r) {
                      random_algo = r.report.algorithm;
                    });
  }
  {
    SortJobSpec spec;
    spec.name = "random-default";
    spec.mem_records = mem;
    auto data = make_keys(n, Dist::kUniform, rng);
    svc.submit<u64>(std::move(spec), std::move(data), std::less<u64>{},
                    [&](const SortResult<u64>& r) {
                      plain_algo = r.report.algorithm;
                    });
  }
  svc.drain();
  EXPECT_EQ(near_algo, "OrderAdaptive");
  EXPECT_NEAR(near_passes, 1.0, 0.25);
  EXPECT_EQ(random_algo, plain_algo);
  EXPECT_NE(random_algo, "OrderAdaptive");
}

}  // namespace
}  // namespace pdm
