// Shared helpers for the pdmsort test suite.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "core/sort_report.h"
#include "pdm/pdm_context.h"
#include "pdm/striped_run.h"
#include "util/generators.h"

namespace pdm::test {

/// Standard test geometry: square M, B = sqrt(M), D = sqrt(M)/C.
struct Geometry {
  u64 mem;   // M in records
  u64 rpb;   // B in records
  u32 disks; // D

  static Geometry square(u64 mem, u32 c = 4) {
    const u64 s = isqrt(mem);
    PDM_CHECK(s * s == mem, "square geometry needs M a perfect square");
    return Geometry{mem, s, static_cast<u32>(std::max<u64>(1, s / c))};
  }
};

template <Record R>
std::unique_ptr<PdmContext> make_ctx(const Geometry& g, u64 seed = 1) {
  return make_memory_context(g.disks, g.rpb * sizeof(R), seed);
}

/// Stages input on disk and zeroes the stats so the sorter's I/O is
/// measured in isolation.
template <Record R>
StripedRun<R> stage_input(PdmContext& ctx, const std::vector<R>& data) {
  auto run = write_input_run<R>(ctx, std::span<const R>(data));
  ctx.io().reset_stats();
  return run;
}

/// Asserts the run's content equals std::sort of `input` under <.
template <Record R>
void expect_sorted_output(const StripedRun<R>& out,
                          std::vector<R> input) {
  ASSERT_EQ(out.size(), input.size());
  std::sort(input.begin(), input.end());
  auto got = out.read_all();
  ASSERT_EQ(got.size(), input.size());
  for (usize i = 0; i < input.size(); ++i) {
    ASSERT_EQ(got[i], input[i]) << "mismatch at position " << i;
  }
}

/// Asserts only key order (for KV records where equal keys may permute).
template <Record R>
void expect_key_sorted_permutation(const StripedRun<R>& out,
                                   std::vector<R> input) {
  ASSERT_EQ(out.size(), input.size());
  auto got = out.read_all();
  auto key_of = [](const R& r) { return record_key(r); };
  for (usize i = 1; i < got.size(); ++i) {
    ASSERT_LE(key_of(got[i - 1]), key_of(got[i])) << "disorder at " << i;
  }
  // Same multiset of records.
  auto full_less = [](const R& a, const R& b) {
    return std::memcmp(&a, &b, sizeof(R)) < 0;
  };
  std::sort(got.begin(), got.end(), full_less);
  std::sort(input.begin(), input.end(), full_less);
  for (usize i = 0; i < input.size(); ++i) {
    ASSERT_TRUE(std::memcmp(&got[i], &input[i], sizeof(R)) == 0)
        << "multiset mismatch at " << i;
  }
}

inline void expect_passes_near(const SortReport& r, double expected,
                               double tol = 0.15) {
  EXPECT_NEAR(r.passes, expected, tol)
      << r.algorithm << ": reads=" << r.io.read_ops
      << " writes=" << r.io.write_ops << " util=" << r.utilization;
}

}  // namespace pdm::test
