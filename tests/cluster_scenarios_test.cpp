// Elastic-cluster scenario suite: scripted topology changes against
// seeded workloads. Locks down the PR 5 acceptance criteria:
//
//  - consistent-hash ring: across 1→2→4→8 transitions only ~1/N of
//    locality keys remap, every remapped key moves TO the joining shard
//    (or OFF the leaving one), the assignment is near-uniform
//    (chi-square bound), and sticky pins survive remaps coherently;
//  - live 2→4 scale-out and 4→3 drain complete under load with zero
//    lost or duplicated jobs and per-job pass counts equal to the
//    static-topology baseline;
//  - the two-level exact-sum IoStats invariant holds across migrations
//    and retirements (per-job deltas sum to shard totals — live or
//    retired — and shard totals sum to the cluster total);
//  - the hold queue lets idle shards steal a saturated shard's backlog
//    in EDF-within-priority order (starvation regression);
//  - concurrent submits and cancels while add_shard/drain_shard run
//    mid-flight stay coherent. The whole file must be TSan-clean (CI
//    runs it under -fsanitize=thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "pdm/backend_factory.h"
#include "test_support.h"
#include "util/generators.h"

namespace pdm {
namespace {

constexpr u64 kMem = 1024;          // per-job M in records
constexpr usize kBlockBytes = 256;  // rpb: u64 = 32
constexpr u32 kDisksPerShard = 4;

SortJobSpec spec_of(std::string name, std::string locality_key = "",
                    int priority = 0) {
  SortJobSpec s;
  s.name = std::move(name);
  s.mem_records = kMem;
  s.priority = priority;
  s.locality_key = std::move(locality_key);
  return s;
}

/// A locality key routing to `shard` on the cluster's consistent-hash
/// ring.
std::string key_for_shard(const Cluster& cluster, u32 shard,
                          std::string seed) {
  std::string key = seed;
  while (cluster.router().ring().route(locality_hash(key)) != shard) {
    key += seed;
  }
  return key;
}

/// Submits a u64 job whose callback verifies sortedness and counts its
/// own invocations — the "zero lost or duplicated jobs" probe: exactly
/// one callback per kDone job, zero per anything else.
JobId submit_counted(Cluster& cluster, SortJobSpec spec,
                     std::vector<u64> data,
                     std::shared_ptr<std::atomic<int>> runs,
                     std::atomic<int>& bad) {
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  return cluster.submit<u64>(
      std::move(spec), std::move(data), std::less<u64>{},
      [expected = std::move(expected), runs,
       &bad](const SortResult<u64>& res) {
        ++*runs;
        if (res.output.read_all() != expected) ++bad;
      });
}

/// Asserts the two-level exact-sum I/O invariant over a drained cluster:
/// per-job deltas sum to each shard's totals (live shards via jobs(),
/// retired shards via the cluster-held records of `ids`), and per-shard
/// totals sum to the cluster totals.
void expect_two_level_invariant(Cluster& cluster,
                                const std::vector<JobId>& ids) {
  const ClusterStats st = cluster.stats();
  std::vector<IoStats> sums(st.shards);
  for (auto& s : sums) s.reset(kDisksPerShard);
  std::set<u32> retired;
  for (usize s = 0; s < st.shards; ++s) {
    if (cluster.shard_active(static_cast<u32>(s))) {
      for (const JobInfo& j : cluster.shard(s).jobs()) {
        sums[s].read_ops += j.io.read_ops;
        sums[s].write_ops += j.io.write_ops;
        sums[s].blocks_read += j.io.blocks_read;
        sums[s].blocks_written += j.io.blocks_written;
      }
    } else {
      retired.insert(static_cast<u32>(s));
    }
  }
  // Retired shards' records live at cluster level now; their JobInfo
  // still names the serving shard.
  for (JobId id : ids) {
    const JobInfo j = cluster.info(id);
    if (retired.count(j.shard) == 0) continue;
    sums[j.shard].read_ops += j.io.read_ops;
    sums[j.shard].write_ops += j.io.write_ops;
    sums[j.shard].blocks_read += j.io.blocks_read;
    sums[j.shard].blocks_written += j.io.blocks_written;
  }
  IoStats shard_sum;
  shard_sum.reset(0);
  for (usize s = 0; s < st.shards; ++s) {
    EXPECT_EQ(sums[s].read_ops, st.per_shard[s].io.read_ops) << "shard " << s;
    EXPECT_EQ(sums[s].write_ops, st.per_shard[s].io.write_ops)
        << "shard " << s;
    EXPECT_EQ(sums[s].blocks_read, st.per_shard[s].io.blocks_read)
        << "shard " << s;
    EXPECT_EQ(sums[s].blocks_written, st.per_shard[s].io.blocks_written)
        << "shard " << s;
    shard_sum.read_ops += st.per_shard[s].io.read_ops;
    shard_sum.write_ops += st.per_shard[s].io.write_ops;
    shard_sum.blocks_read += st.per_shard[s].io.blocks_read;
    shard_sum.blocks_written += st.per_shard[s].io.blocks_written;
  }
  EXPECT_EQ(shard_sum.read_ops, st.io.read_ops);
  EXPECT_EQ(shard_sum.write_ops, st.io.write_ops);
  EXPECT_EQ(shard_sum.blocks_read, st.io.blocks_read);
  EXPECT_EQ(shard_sum.blocks_written, st.io.blocks_written);
}

// ---------------------------------------------------------------------
// Consistent-hash ring properties (satellite: property test).
// ---------------------------------------------------------------------

TEST(ClusterScenarios, RingRemapsOnlyOneNthOfKeysPerTransition)
{
  // 1 → 2 → 4 → 8 shards, one add at a time: adding shard k to a
  // (k)-shard ring must move keys ONLY onto shard k, and roughly a
  // 1/(k+1) share of them (the ring's vnode arcs concentrate the share
  // around the fair split).
  constexpr usize kKeys = 20000;
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  for (usize i = 0; i < kKeys; ++i) {
    keys.push_back("tenant-" + std::to_string(i));
  }
  ShardRouter router(1, RoutePolicy::kLocalityHash);
  std::vector<ShardLoad> loads(8);  // slot-indexed placeholders
  auto place_all = [&] {
    std::vector<u32> out;
    out.reserve(kKeys);
    SortJobSpec spec;
    for (const auto& k : keys) {
      spec.locality_key = k;
      out.push_back(router.place(spec, loads));
    }
    return out;
  };
  std::vector<u32> before = place_all();
  for (u32 add = 1; add < 8; ++add) {
    router.add_shard(add);
    std::vector<u32> after = place_all();
    usize moved = 0;
    for (usize i = 0; i < kKeys; ++i) {
      if (after[i] != before[i]) {
        ++moved;
        // The consistent-hash property, exactly: a remapped key can only
        // have been claimed by the joining shard.
        ASSERT_EQ(after[i], add) << "key " << keys[i]
                                 << " moved between surviving shards";
      }
    }
    const double frac =
        static_cast<double>(moved) / static_cast<double>(kKeys);
    const double fair = 1.0 / static_cast<double>(add + 1);
    EXPECT_GT(frac, 0.55 * fair) << "transition to " << add + 1 << " shards";
    EXPECT_LT(frac, 1.45 * fair) << "transition to " << add + 1 << " shards";
    before = std::move(after);
  }
  // Near-uniform assignment at 8 shards: chi-square over the key counts
  // against the uniform expectation. With 256 vnodes the arc-share
  // spread is ~1/sqrt(256) per shard (measured chi2 ~69 for this key
  // population); 200 is a loose deterministic bound (the ring layout is
  // a pure function of the shard ids).
  std::vector<usize> counts(8, 0);
  for (u32 s : before) ++counts[s];
  const double expect = static_cast<double>(kKeys) / 8.0;
  double chi2 = 0;
  for (usize c : counts) {
    const double d = static_cast<double>(c) - expect;
    chi2 += d * d / expect;
  }
  EXPECT_LT(chi2, 200.0) << "assignment too skewed";
  for (usize c : counts) {
    EXPECT_GT(static_cast<double>(c), 0.7 * expect);
    EXPECT_LT(static_cast<double>(c), 1.3 * expect);
  }

  // Removal is the mirror image: draining shard 3 moves exactly its own
  // keys, nothing else.
  std::vector<u32> with8 = before;
  router.remove_shard(3);
  std::vector<u32> after = place_all();
  for (usize i = 0; i < kKeys; ++i) {
    if (with8[i] == 3) {
      EXPECT_NE(after[i], 3u);
    } else {
      EXPECT_EQ(after[i], with8[i]) << "unrelated key moved on a drain";
    }
  }
}

TEST(ClusterScenarios, StickyPinsSurviveTopologyChangesCoherently)
{
  ShardRouter router(4, RoutePolicy::kLocalityHash);
  router.set_spill_promote_after(2);
  std::vector<ShardLoad> loads(8);
  SortJobSpec spec;
  spec.locality_key = "pinned-tenant";
  // Two consecutive spills to shard 2 pin the key there.
  router.note_spill(spec.locality_key, 2);
  router.note_spill(spec.locality_key, 2);
  ASSERT_TRUE(router.pinned_shard(spec.locality_key).has_value());
  EXPECT_EQ(*router.pinned_shard(spec.locality_key), 2u);
  EXPECT_EQ(router.place(spec, loads), 2u);
  // Adding a shard does not disturb the pin (even if the ring would now
  // route the key elsewhere).
  router.add_shard(4);
  ASSERT_TRUE(router.pinned_shard(spec.locality_key).has_value());
  EXPECT_EQ(*router.pinned_shard(spec.locality_key), 2u);
  EXPECT_EQ(router.place(spec, loads), 2u);
  // Draining the pin's target dissolves it: the key re-learns, and
  // placement falls back to the ring — on an active shard.
  router.remove_shard(2);
  EXPECT_FALSE(router.pinned_shard(spec.locality_key).has_value());
  const u32 placed = router.place(spec, loads);
  EXPECT_NE(placed, 2u);
  EXPECT_TRUE(router.is_active(placed));
}

// ---------------------------------------------------------------------
// Scripted scale-out and drain under load (tentpole acceptance).
// ---------------------------------------------------------------------

/// Runs every dataset once on a static 1-shard cluster (same per-shard
/// geometry) and returns the per-dataset pass counts: the
/// static-topology baseline elastic runs are pinned to.
std::vector<double> baseline_passes(
    const std::vector<std::vector<u64>>& datasets) {
  ClusterConfig cfg;
  cfg.shards = 1;
  cfg.shard.workers = 1;
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes), cfg);
  std::vector<double> passes;
  for (const auto& d : datasets) {
    const JobInfo info =
        cluster.wait(cluster.submit<u64>(spec_of("base"), d));
    EXPECT_EQ(info.state, JobState::kDone);
    passes.push_back(info.report.passes);
  }
  return passes;
}

TEST(ClusterScenarios, ScaleOutTwoToFourUnderLoad)
{
  Rng rng(31);
  std::vector<std::vector<u64>> datasets;
  for (int j = 0; j < 20; ++j) {
    datasets.push_back(
        make_keys((static_cast<usize>(j) % 3 + 1) * 2 * kMem,
                  Dist::kPermutation, rng));
  }
  const std::vector<double> base = baseline_passes(datasets);

  ClusterConfig cfg;
  cfg.shards = 2;
  cfg.policy = RoutePolicy::kLeastLoaded;
  cfg.shard.workers = 1;
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes, 50),
                  cfg);
  std::vector<JobId> ids;
  std::vector<std::shared_ptr<std::atomic<int>>> runs;
  std::atomic<int> bad{0};
  auto feed = [&](int from, int to) {
    for (int j = from; j < to; ++j) {
      runs.push_back(std::make_shared<std::atomic<int>>(0));
      ids.push_back(submit_counted(
          cluster,
          spec_of("job" + std::to_string(j),
                  "tenant-" + std::to_string(j % 5)),
          datasets[static_cast<usize>(j)], runs.back(), bad));
    }
  };
  // First half lands on the 2-shard topology and backs up...
  feed(0, 10);
  // ...then the cluster scales out live: the new shards join the ring
  // and immediately steal parked backlog.
  const u32 s2 = cluster.add_shard();
  const u32 s3 = cluster.add_shard();
  EXPECT_EQ(s2, 2u);
  EXPECT_EQ(s3, 3u);
  feed(10, 20);
  cluster.drain();

  for (usize j = 0; j < ids.size(); ++j) {
    const JobInfo info = cluster.wait(ids[j]);
    ASSERT_EQ(info.state, JobState::kDone) << info.error;
    // Placement (elastic or not) must not change a job's I/O complexity.
    EXPECT_DOUBLE_EQ(info.report.passes, base[j]) << "job " << j;
    EXPECT_EQ(runs[j]->load(), 1) << "job " << j << " ran != once";
  }
  EXPECT_EQ(bad.load(), 0);
  const ClusterStats st = cluster.stats();
  EXPECT_EQ(st.shards, 4u);
  EXPECT_EQ(st.active, 4u);
  EXPECT_EQ(st.shards_added, 2u);
  EXPECT_EQ(st.completed, 20u);
  EXPECT_EQ(st.submitted, 20u);
  ASSERT_EQ(st.jobs_per_shard.size(), 4u);
  // The scale-out actually absorbed load.
  EXPECT_GT(st.jobs_per_shard[2] + st.jobs_per_shard[3], 0u);
  u64 placed = 0;
  for (u64 per : st.jobs_per_shard) placed += per;
  EXPECT_EQ(placed, 20u);
  expect_two_level_invariant(cluster, ids);
}

TEST(ClusterScenarios, DrainShardMigratesQueuedJobsUnderLoad)
{
  Rng rng(32);
  std::vector<std::vector<u64>> datasets;
  for (int j = 0; j < 12; ++j) {
    datasets.push_back(make_keys(2 * kMem, Dist::kPermutation, rng));
  }
  const std::vector<double> base = baseline_passes(datasets);

  ClusterConfig cfg;
  cfg.shards = 4;
  cfg.policy = RoutePolicy::kLocalityHash;
  cfg.shard.workers = 1;
  // Local queues (no cluster hold queue) so the drained shard has a
  // backlog to extract — the migration path under test.
  cfg.hold_queue = false;
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes, 100),
                  cfg);
  const std::string hot = key_for_shard(cluster, 1, "h");
  std::vector<JobId> ids;
  std::vector<std::shared_ptr<std::atomic<int>>> runs;
  std::atomic<int> bad{0};
  // A queue of keyed jobs piles up on shard 1 (workers = 1).
  for (int j = 0; j < 12; ++j) {
    runs.push_back(std::make_shared<std::atomic<int>>(0));
    ids.push_back(submit_counted(cluster,
                                 spec_of("hot" + std::to_string(j), hot),
                                 datasets[static_cast<usize>(j)],
                                 runs.back(), bad));
    EXPECT_EQ(cluster.shard_of(ids.back()), 1u);
  }
  // A waiter blocked on a queued job must follow it through migration.
  std::thread waiter([&] {
    const JobInfo info = cluster.wait(ids[10]);
    EXPECT_EQ(info.state, JobState::kDone);
  });
  // Retire shard 1 mid-backlog: queued jobs migrate, the running one
  // finishes in place, the shard's records move to cluster storage.
  cluster.drain_shard(1);
  EXPECT_FALSE(cluster.shard_active(1));
  EXPECT_EQ(cluster.active_shards().size(), 3u);
  waiter.join();
  // The hot tenant's ring arc fell to a survivor; new submissions keep
  // flowing without touching the retired slot.
  runs.push_back(std::make_shared<std::atomic<int>>(0));
  ids.push_back(submit_counted(cluster, spec_of("after", hot),
                               datasets[11], runs.back(), bad));
  EXPECT_NE(cluster.shard_of(ids.back()), 1u);
  cluster.drain();

  usize on_retired = 0;
  for (usize j = 0; j < ids.size(); ++j) {
    const JobInfo info = cluster.wait(ids[j]);
    ASSERT_EQ(info.state, JobState::kDone) << info.error;
    EXPECT_EQ(runs[j]->load(), 1) << "job " << j << " ran != once";
    EXPECT_DOUBLE_EQ(info.report.passes,
                     base[std::min<usize>(j, base.size() - 1)])
        << "job " << j;
    if (info.shard == 1) ++on_retired;
  }
  EXPECT_EQ(bad.load(), 0);
  const ClusterStats st = cluster.stats();
  EXPECT_EQ(st.shards, 4u);
  EXPECT_EQ(st.active, 3u);
  EXPECT_EQ(st.shards_drained, 1u);
  EXPECT_EQ(st.completed, 13u);
  EXPECT_EQ(st.submitted, 13u);
  EXPECT_GT(st.migrated, 0u);
  // Whatever ran on shard 1 before retirement is still accounted and
  // inspectable; the rest moved.
  EXPECT_EQ(st.migrated + on_retired, 12u);
  EXPECT_GE(on_retired, 1u);  // at least the job that was running
  expect_two_level_invariant(cluster, ids);
  // The retired slot is inert: placement never picks it and its handle
  // throws.
  EXPECT_THROW(cluster.shard(1), Error);
}

TEST(ClusterScenarios, ClusterRecordRetentionBoundsDrainHistory)
{
  ClusterConfig cfg;
  cfg.shards = 2;
  cfg.policy = RoutePolicy::kLocalityHash;
  cfg.shard.workers = 1;
  cfg.retain_cluster_records_max = 2;
  // No stealing: all five keyed jobs must run (and leave records) on
  // shard 1, so the drain moves five records into cluster storage.
  cfg.hold_queue = false;
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes), cfg);
  Rng rng(34);
  const std::string hot = key_for_shard(cluster, 1, "r");
  std::vector<JobId> ids;
  for (int j = 0; j < 5; ++j) {
    ids.push_back(cluster.submit<u64>(
        spec_of("r" + std::to_string(j), hot),
        make_keys(2 * kMem, Dist::kPermutation, rng)));
  }
  cluster.drain();
  for (JobId id : ids) EXPECT_EQ(cluster.wait(id).state, JobState::kDone);
  // Retirement moves the 5 records into cluster-held storage, where the
  // FIFO cap keeps only the newest 2; evicted ids throw like shard-side
  // retention eviction always has.
  cluster.drain_shard(1);
  const ClusterStats st = cluster.stats();
  EXPECT_EQ(st.cluster_records, 2u);
  EXPECT_EQ(cluster.info(ids[4]).state, JobState::kDone);
  EXPECT_THROW(cluster.info(ids[0]), Error);
  EXPECT_FALSE(cluster.forget(ids[0]));
  EXPECT_TRUE(cluster.forget(ids[4]));
}

// ---------------------------------------------------------------------
// Hold queue + work stealing (satellite: starvation regression).
// ---------------------------------------------------------------------

TEST(ClusterScenarios, IdleShardsStealHeldBacklogInEdfOrder)
{
  ClusterConfig cfg;
  cfg.shards = 2;
  cfg.policy = RoutePolicy::kLocalityHash;
  cfg.shard.workers = 1;
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes, 200),
                  cfg);
  Rng rng(33);
  const std::string key0 = key_for_shard(cluster, 0, "z");
  const std::string key1 = key_for_shard(cluster, 1, "y");
  // Saturate shard 0: a large carve holds most of its budget while a
  // long job occupies its only worker — the ROADMAP admission-aging
  // hazard at cluster scope.
  SortJobSpec big = spec_of("big", key0);
  big.carve_bytes = cluster.shard(0).budget().limit() / 2;
  const JobId big_id = cluster.submit<u64>(
      big, make_keys(64 * kMem, Dist::kPermutation, rng));
  // Occupy shard 1 briefly so the small-job stream parks first.
  const JobId blocker = cluster.submit<u64>(
      spec_of("blocker", key1), make_keys(8 * kMem, Dist::kPermutation, rng));
  while (cluster.info(big_id).state == JobState::kQueued ||
         cluster.info(blocker).state == JobState::kQueued) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  // A small-job stream keyed to the saturated shard, submitted in an
  // order that inverts the EDF-within-priority order.
  std::mutex order_mu;
  std::vector<std::string> order;
  auto tracked = [&](std::string name, int priority, double deadline_s) {
    SortJobSpec s = spec_of(name, key0, priority);
    s.deadline_s = deadline_s;
    return cluster.submit<u64>(
        std::move(s), make_keys(kMem, Dist::kUniform, rng),
        std::less<u64>{},
        [&order, &order_mu, name](const SortResult<u64>&) {
          std::lock_guard g(order_mu);
          order.push_back(name);
        });
  };
  std::vector<JobId> smalls;
  smalls.push_back(tracked("p0-late", 0, 0));
  smalls.push_back(tracked("p0-loose", 0, 60.0));
  smalls.push_back(tracked("p0-tight", 0, 30.0));
  smalls.push_back(tracked("p1-loose", 1, 60.0));
  smalls.push_back(tracked("p1-tight", 1, 30.0));
  // All five parked: shard 0 has no worker or memory headroom.
  {
    const ClusterStats st = cluster.stats();
    EXPECT_GE(st.held_now, 4u);  // the blocker may have finished already
  }
  cluster.drain();
  EXPECT_EQ(cluster.wait(big_id).state, JobState::kDone);
  for (JobId id : smalls) {
    EXPECT_EQ(cluster.wait(id).state, JobState::kDone);
    // The backlog did not wait for the saturated shard: shard 1 stole it.
    EXPECT_EQ(cluster.shard_of(id), 1u);
  }
  const ClusterStats st = cluster.stats();
  EXPECT_GE(st.stolen, 5u);
  EXPECT_GE(st.held_total, 5u);
  // EDF within priority bands, priority first — the hold queue's
  // dispatch order, serialized by shard 1's single worker.
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], "p1-tight");
  EXPECT_EQ(order[1], "p1-loose");
  EXPECT_EQ(order[2], "p0-tight");
  EXPECT_EQ(order[3], "p0-loose");
  EXPECT_EQ(order[4], "p0-late");
}

// ---------------------------------------------------------------------
// Concurrent elasticity stress (satellite: TSan).
// ---------------------------------------------------------------------

TEST(ClusterScenarios, StressSubmitsAndCancelsDuringTopologyChanges)
{
  ClusterConfig cfg;
  cfg.shards = 3;
  cfg.policy = RoutePolicy::kLeastLoaded;
  cfg.shard.workers = 2;
  cfg.shard.total_memory_bytes = usize{32} << 20;
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes, 20),
                  cfg);
  constexpr int kThreads = 3;
  constexpr int kPerThread = 24;
  std::atomic<int> bad{0};
  std::atomic<u64> cancelled_true{0};
  std::mutex ids_mu;
  std::vector<JobId> ids;
  std::vector<std::shared_ptr<std::atomic<int>>> runs;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(100 + static_cast<u64>(t));
      for (int j = 0; j < kPerThread; ++j) {
        auto r = std::make_shared<std::atomic<int>>(0);
        const u64 n = (1 + static_cast<u64>(j % 3)) * kMem;
        JobId id = submit_counted(
            cluster,
            spec_of("s" + std::to_string(t) + "-" + std::to_string(j),
                    "tenant-" + std::to_string((t + j) % 7), j % 2),
            make_keys(static_cast<usize>(n), Dist::kUniform, rng), r, bad);
        std::lock_guard g(ids_mu);
        ids.push_back(id);
        runs.push_back(std::move(r));
      }
    });
  }
  std::thread canceller([&] {
    // Distinct victims only: cancelling a running job twice truthfully
    // returns true both times (both calls promise kCancelled), which
    // would double-count against the stats below.
    std::set<JobId> tried;
    for (int k = 0; k < 30; ++k) {
      JobId victim = 0;
      {
        std::lock_guard g(ids_mu);
        if (!ids.empty()) {
          victim = ids[static_cast<usize>(k * 7) % ids.size()];
        }
      }
      if (victim != 0 && tried.insert(victim).second &&
          cluster.cancel(victim)) {
        ++cancelled_true;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  // Topology churn mid-flight: grow to 4, retire shard 1, grow again.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const u32 added1 = cluster.add_shard();
  cluster.drain_shard(1);
  const u32 added2 = cluster.add_shard();
  for (auto& th : submitters) th.join();
  canceller.join();
  cluster.drain();

  EXPECT_EQ(added1, 3u);
  EXPECT_EQ(added2, 4u);
  const ClusterStats st = cluster.stats();
  EXPECT_EQ(st.shards, 5u);
  EXPECT_EQ(st.active, 4u);
  EXPECT_EQ(st.submitted, static_cast<u64>(kThreads * kPerThread));
  EXPECT_EQ(st.completed + st.failed + st.cancelled + st.rejected,
            st.submitted);
  EXPECT_EQ(st.cancelled, cancelled_true.load());
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_EQ(bad.load(), 0);
  // No job lost, none run twice: exactly one callback per completed
  // job; a cancelled job may have 0 or 1 (cancel() may land between the
  // sort's last checkpoint and its commit — the work is discarded and
  // the job still reports kCancelled, as the service documents); never
  // more than one anywhere.
  u64 total_runs = 0;
  u64 cancelled_after_callback = 0;
  for (usize j = 0; j < ids.size(); ++j) {
    const int r = runs[j]->load();
    ASSERT_LE(r, 1) << "job " << ids[j] << " ran twice";
    total_runs += static_cast<u64>(r);
    const JobInfo info = cluster.info(ids[j]);
    if (info.state == JobState::kDone) {
      EXPECT_EQ(r, 1) << "completed job " << ids[j] << " lost its callback";
    } else if (info.state == JobState::kCancelled) {
      cancelled_after_callback += static_cast<u64>(r);
    } else {
      EXPECT_EQ(r, 0) << "job " << ids[j] << " in state "
                      << job_state_name(info.state) << " ran";
    }
  }
  EXPECT_EQ(total_runs, st.completed + cancelled_after_callback);
  // The drained shard ended with zero jobs: its final snapshot balances
  // (everything it ever admitted reached a terminal state there)...
  const ServiceStats& retired = st.per_shard[1];
  EXPECT_EQ(retired.submitted, retired.completed + retired.failed +
                                   retired.cancelled + retired.rejected);
  // ...and the two-level accounting invariant holds across the
  // migrations and the retirement.
  expect_two_level_invariant(cluster, ids);
}

}  // namespace
}  // namespace pdm
