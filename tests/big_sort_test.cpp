// Tests for the M^2-scale sorts: SevenPass (Theorem 6.2) and
// ExpectedSixPass (Theorem 6.3).
#include <gtest/gtest.h>

#include "core/expected_six_pass.h"
#include "core/seven_pass.h"
#include "test_support.h"

namespace pdm {
namespace {

using test::Geometry;

class SevenPassDist : public ::testing::TestWithParam<Dist> {};

TEST_P(SevenPassDist, SortsMSquared) {
  const u64 mem = 256;
  const auto g = Geometry::square(mem);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(static_cast<u64>(GetParam()) * 3 + 1);
  const u64 n = mem * mem;
  auto data = make_keys(static_cast<usize>(n), GetParam(), rng);
  auto in = test::stage_input<u64>(*ctx, data);
  SevenPassOptions opt;
  opt.mem_records = mem;
  auto res = seven_pass_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  test::expect_passes_near(res.report, 7.0, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Dists, SevenPassDist,
                         ::testing::Values(Dist::kUniform, Dist::kSorted,
                                           Dist::kReverse, Dist::kFewDistinct,
                                           Dist::kZipf, Dist::kAllEqual),
                         [](const auto& info) {
                           std::string s = dist_name(info.param);
                           std::replace(s.begin(), s.end(), '-', '_');
                           return s;
                         });

TEST(SevenPass, PartialSegmentsCounts) {
  // N = k * M^{3/2} for k < sqrt(M) also works (fewer outer sequences).
  const u64 mem = 256;
  const auto g = Geometry::square(mem);
  for (u64 k : {2ull, 5ull, 9ull}) {
    auto ctx = test::make_ctx<u64>(g, k);
    Rng rng(k * 7);
    const u64 n = k * mem * 16;
    auto data = make_keys(static_cast<usize>(n), Dist::kUniform, rng);
    auto in = test::stage_input<u64>(*ctx, data);
    SevenPassOptions opt;
    opt.mem_records = mem;
    auto res = seven_pass_sort<u64>(*ctx, in, opt);
    test::expect_sorted_output<u64>(res.output, data);
    EXPECT_LE(res.report.passes, 7.4) << "k=" << k;
  }
}

TEST(SevenPass, RejectsBadShapes) {
  const u64 mem = 256;
  const auto g = Geometry::square(mem);
  auto ctx = test::make_ctx<u64>(g);
  std::vector<u64> data(mem * 8, 1);  // not a multiple of M^{3/2}
  auto in = test::stage_input<u64>(*ctx, data);
  SevenPassOptions opt;
  opt.mem_records = mem;
  EXPECT_THROW(seven_pass_sort<u64>(*ctx, in, opt), Error);
}

TEST(SevenPass, LargerGeometry) {
  const u64 mem = 1024;
  const auto g = Geometry::square(mem);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(11);
  const u64 n = 4 * mem * 32;  // 4 outer segments of M^{3/2}
  auto data = make_keys(static_cast<usize>(n), Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  SevenPassOptions opt;
  opt.mem_records = mem;
  auto res = seven_pass_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  EXPECT_GT(res.report.utilization, 0.9 * g.disks);
}

TEST(ExpectedSixPass, SortsWithinCapacity) {
  const u64 mem = 1024;
  const auto g = Geometry::square(mem);
  auto ctx = test::make_ctx<u64>(g);
  const u64 n = 8 * 4096;
  Rng rng(13);
  auto data = make_keys(static_cast<usize>(n), Dist::kPermutation, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ExpectedSixPassOptions opt;
  opt.mem_records = mem;
  auto res = expected_six_pass_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  EXPECT_FALSE(res.report.fallback_taken);
  test::expect_passes_near(res.report, 6.0, 0.4);
}

TEST(ExpectedSixPass, BeatsSevenPassByAboutOnePass) {
  // Same N for both: 2 full M^{3/2} segments (SevenPass shape), within
  // cap6 so ExpectedSixPass succeeds without fallback.
  const u64 mem = 1024;
  const auto g = Geometry::square(mem);
  const u64 n = 2 * mem * 32;  // 65536
  ASSERT_LE(n, cap_expected_six_pass(mem, 1.0));
  Rng rng(17);
  auto data = make_keys(static_cast<usize>(n), Dist::kUniform, rng);
  double p6, p7;
  {
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, data);
    ExpectedSixPassOptions opt;
    opt.mem_records = mem;
    auto res = expected_six_pass_sort<u64>(*ctx, in, opt);
    EXPECT_FALSE(res.report.fallback_taken);
    p6 = res.report.passes;
  }
  {
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, data);
    SevenPassOptions opt;
    opt.mem_records = mem;
    p7 = seven_pass_sort<u64>(*ctx, in, opt).report.passes;
  }
  EXPECT_LT(p6, p7 - 0.5);
}

TEST(ExpectedSixPass, AdversarialSegmentsFallBackAndStillSort) {
  const u64 mem = 1024;
  const auto g = Geometry::square(mem);
  auto ctx = test::make_ctx<u64>(g);
  const u64 n = 8 * 4096;
  auto data = make_rotated(static_cast<usize>(n), static_cast<usize>(n / 2));
  auto in = test::stage_input<u64>(*ctx, data);
  ExpectedSixPassOptions opt;
  opt.mem_records = mem;
  auto res = expected_six_pass_sort<u64>(*ctx, in, opt);
  EXPECT_TRUE(res.report.fallback_taken);
  test::expect_sorted_output<u64>(res.output, data);
}

TEST(ExpectedSixPass, ExplicitSegmentLength) {
  const u64 mem = 1024;
  const auto g = Geometry::square(mem);
  auto ctx = test::make_ctx<u64>(g);
  const u64 n = 4 * 5120;
  Rng rng(21);
  auto data = make_keys(static_cast<usize>(n), Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ExpectedSixPassOptions opt;
  opt.mem_records = mem;
  opt.segment_len = 5120;  // 5M, multiple of sqrt(M)*B = 1024
  auto res = expected_six_pass_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
}

TEST(ExpectedSixPass, InfeasibleSegmentsThrow) {
  const u64 mem = 256;
  const auto g = Geometry::square(mem);
  auto ctx = test::make_ctx<u64>(g);
  std::vector<u64> data(mem * mem, 1);  // cap6 < M^2: no feasible split
  auto in = test::stage_input<u64>(*ctx, data);
  ExpectedSixPassOptions opt;
  opt.mem_records = mem;
  EXPECT_THROW(expected_six_pass_sort<u64>(*ctx, in, opt), Error);
}

}  // namespace
}  // namespace pdm
