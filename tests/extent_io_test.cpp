// Extent layer tests: allocator contiguity / region separation / free-list
// reuse (incl. a concurrent stress run for TSan), and end-to-end
// equivalence of the coalesced I/O path — sync vs async, memory vs file
// backends must produce byte-identical disks and identical IoStats, and
// the coalesced path must move exactly the same blocks (and ops, hence
// passes) as the block-at-a-time baseline while issuing far fewer backend
// calls.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <thread>

#include "core/adaptive.h"
#include "pdm/file_backend.h"
#include "pdm/memory_backend.h"
#include "pdm/striped_run.h"
#include "test_support.h"
#include "util/generators.h"

namespace pdm {
namespace {

TEST(ExtentAllocator, ExtentsAreContiguousAndRegionsSeparate) {
  DiskAllocator alloc(2);
  const u32 ra = alloc.open_region(64);
  const u32 rb = alloc.open_region(64);
  // Interleave two tenants' allocations on one disk: each tenant's
  // extents must chain contiguously inside its own arena, and the two
  // arenas must not overlap.
  std::vector<Extent> a, b;
  for (int i = 0; i < 4; ++i) {
    a.push_back(alloc.alloc_extent(0, 8, ra));
    b.push_back(alloc.alloc_extent(0, 8, rb));
  }
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(a[i].index, a[i - 1].index + 8) << "tenant A fragmented";
    EXPECT_EQ(b[i].index, b[i - 1].index + 8) << "tenant B fragmented";
  }
  // Disjoint regions: A occupies [a0, a0+32), B [b0, b0+32).
  const u64 a_end = a[0].index + 32, b_end = b[0].index + 32;
  EXPECT_TRUE(a_end <= b[0].index || b_end <= a[0].index);
  EXPECT_EQ(alloc.used_by(ra), 32u);
  EXPECT_EQ(alloc.used_by(rb), 32u);
  EXPECT_EQ(alloc.open_regions(), 2u);
  // Closing a region recycles its unconsumed arena tail (64 - 32 blocks).
  EXPECT_EQ(alloc.free_blocks(0), 0u);
  alloc.close_region(ra);
  EXPECT_EQ(alloc.free_blocks(0), 32u);
  alloc.close_region(rb);
  EXPECT_EQ(alloc.free_blocks(0), 64u);
  EXPECT_EQ(alloc.open_regions(), 0u);
}

TEST(ExtentAllocator, FreeListReusesAndCoalesces) {
  DiskAllocator alloc(1);
  const Extent e1 = alloc.alloc_extent(0, 16);
  const Extent e2 = alloc.alloc_extent(0, 16);
  EXPECT_EQ(e2.index, e1.index + 16);
  EXPECT_EQ(alloc.used_by(0), 32u);
  // Freeing both adjacent spans coalesces them into one, which then
  // satisfies a larger request without bumping the cursor.
  alloc.free_extent(e1);
  alloc.free_extent(e2);
  EXPECT_EQ(alloc.used_by(0), 0u);
  EXPECT_EQ(alloc.free_blocks(0), 32u);
  const Extent big = alloc.alloc_extent(0, 32);
  EXPECT_EQ(big.index, e1.index);
  EXPECT_EQ(alloc.used(0), 32u) << "reuse must not grow the high-water mark";
  EXPECT_EQ(alloc.free_blocks(0), 0u);
  // Partial reuse splits a span and returns the remainder.
  alloc.free_extent(big);
  const Extent small = alloc.alloc_extent(0, 8);
  EXPECT_EQ(small.index, e1.index);
  EXPECT_EQ(alloc.free_blocks(0), 24u);
}

TEST(ExtentAllocator, RunsReleaseTailsAtFinish) {
  auto ctx = make_memory_context(4, 8 * sizeof(u64));
  ASSERT_GT(ctx->extent_blocks(), 1u);
  {
    std::vector<u64> data(8 * 6, 7);  // 6 blocks over 4 disks
    auto run = write_input_run<u64>(*ctx, std::span<const u64>(data));
    // finish() has run: every partially consumed extent's tail is back in
    // the free list, so the context's region holds exactly the run's
    // blocks — the used_by() probe a service uses to check a region is
    // quiescent before resetting anything.
    EXPECT_EQ(ctx->alloc().used_by(ctx->alloc_region()), run.num_blocks());
    u64 free_total = 0;
    for (u32 d = 0; d < 4; ++d) free_total += ctx->alloc().free_blocks(d);
    EXPECT_GT(free_total, 0u) << "extent tails were not recycled";
    EXPECT_EQ(run.read_all(), data);
  }
}

TEST(ExtentAllocator, ConcurrentAllocStress) {
  DiskAllocator alloc(4);
  constexpr usize kThreads = 8;
  std::vector<std::vector<Extent>> held(kThreads);
  std::vector<std::thread> threads;
  for (usize t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      const u32 region = alloc.open_region(32);
      std::vector<Extent> mine;
      for (int i = 0; i < 400; ++i) {
        const u32 disk = static_cast<u32>(rng.below(4));
        const u64 count = 1 + rng.below(12);
        mine.push_back(alloc.alloc_extent(disk, count, region));
        if (rng.below(4) == 0 && !mine.empty()) {
          const usize victim = static_cast<usize>(rng.below(mine.size()));
          alloc.free_extent(mine[victim], region);
          mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(victim));
        }
      }
      held[t] = std::move(mine);
      alloc.close_region(region);
    });
  }
  for (auto& th : threads) th.join();
  // No two live extents may overlap, across all threads and regions.
  std::vector<std::vector<std::pair<u64, u64>>> spans(4);
  for (const auto& mine : held) {
    for (const Extent& e : mine) {
      spans[e.disk].emplace_back(e.index, e.index + e.count);
    }
  }
  for (u32 d = 0; d < 4; ++d) {
    std::sort(spans[d].begin(), spans[d].end());
    for (usize i = 1; i < spans[d].size(); ++i) {
      EXPECT_GE(spans[d][i].first, spans[d][i - 1].second)
          << "overlapping extents on disk " << d;
    }
  }
}

// --- coalesced I/O equivalence ----------------------------------------

void expect_same_accounting(const IoStats& a, const IoStats& b) {
  EXPECT_EQ(a.read_ops, b.read_ops);
  EXPECT_EQ(a.write_ops, b.write_ops);
  EXPECT_EQ(a.blocks_read, b.blocks_read);
  EXPECT_EQ(a.blocks_written, b.blocks_written);
  EXPECT_EQ(a.read_calls, b.read_calls);
  EXPECT_EQ(a.write_calls, b.write_calls);
  EXPECT_EQ(a.disk_reads, b.disk_reads);
  EXPECT_EQ(a.disk_writes, b.disk_writes);
  EXPECT_EQ(a.disk_read_calls, b.disk_read_calls);
  EXPECT_EQ(a.disk_write_calls, b.disk_write_calls);
  EXPECT_DOUBLE_EQ(a.sim_time_s, b.sim_time_s);
}

// Streams a run's worth of data out and back through two contexts — one
// synchronous, one pipelined — over the same backend type, with extents
// and coalescing on. Bytes and stats must match exactly.
void coalesced_roundtrip(PdmContext& sync_ctx, PdmContext& async_ctx,
                         usize depth, u64 seed) {
  async_ctx.set_async_depth(depth);
  Rng rng(seed);
  const usize rpb = sync_ctx.rpb<u64>();
  // Several runs, ragged sizes, so batches mix extent spans and partial
  // tails on both contexts identically.
  std::vector<std::vector<u64>> datasets;
  std::vector<StripedRun<u64>> sruns, aruns;
  for (int r = 0; r < 3; ++r) {
    const usize n = (r + 2) * 8 * rpb + static_cast<usize>(rng.below(rpb));
    datasets.push_back(make_keys(n, Dist::kUniform, rng));
    sruns.push_back(write_input_run<u64>(
        sync_ctx, std::span<const u64>(datasets.back()),
        static_cast<u32>(r)));
    aruns.push_back(write_input_run<u64>(
        async_ctx, std::span<const u64>(datasets.back()),
        static_cast<u32>(r)));
  }
  // Bulk span reads (the coalescing-heavy shape) in random chunks.
  for (int round = 0; round < 20; ++round) {
    const usize r = static_cast<usize>(rng.below(3));
    const u64 nb = sruns[r].num_blocks();
    const u64 first = rng.below(nb);
    const u64 count = 1 + rng.below(nb - first);
    std::vector<u64> got_s(static_cast<usize>(count) * rpb);
    std::vector<u64> got_a(got_s.size());
    sruns[r].read_blocks(first, count, got_s.data());
    aruns[r].read_blocks(first, count, got_a.data());
    EXPECT_EQ(got_s, got_a);
  }
  // Full readback must reproduce the input bytes on both.
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(sruns[r].read_all(), datasets[static_cast<usize>(r)]);
    EXPECT_EQ(aruns[r].read_all(), datasets[static_cast<usize>(r)]);
  }
  async_ctx.aio().drain();
  expect_same_accounting(sync_ctx.stats(), async_ctx.stats());
  EXPECT_EQ(sync_ctx.stats().schedule_hash, async_ctx.stats().schedule_hash);
  // The point of the layer: far fewer backend calls than blocks.
  EXPECT_GT(sync_ctx.stats().coalesced_ratio(), 2.0);
}

TEST(ExtentIo, SyncAsyncEquivalenceMemoryBackend) {
  for (usize depth : {2u, 4u}) {
    auto sync_ctx = make_memory_context(4, 16 * sizeof(u64), 1);
    auto async_ctx = make_memory_context(4, 16 * sizeof(u64), 1);
    coalesced_roundtrip(*sync_ctx, *async_ctx, depth, 7);
  }
}

TEST(ExtentIo, SyncAsyncEquivalenceFileBackend) {
  const std::string dir = "/tmp/pdmsort_extent_test";
  auto sync_ctx = make_file_context(4, 16 * sizeof(u64), dir + "/sync");
  auto async_ctx = make_file_context(4, 16 * sizeof(u64), dir + "/async");
  coalesced_roundtrip(*sync_ctx, *async_ctx, 4, 11);
  std::filesystem::remove_all(dir);
}

// Extent WriteReqs (count > 1, strided) submitted through the context's
// write-behind path must be staged correctly: the slab copy flattens the
// strided payload, and the caller's buffer is reusable immediately.
TEST(ExtentIo, WriteBehindStagesExtentRequests) {
  auto ctx = make_memory_context(2, 8 * sizeof(u64));
  ctx->set_async_depth(4);
  const usize rpb = ctx->rpb<u64>();
  const Extent e = ctx->alloc().alloc_extent(0, 4, ctx->alloc_region());
  // Source: 4 blocks at a 2-block stride inside a scratch buffer.
  std::vector<u64> src(8 * rpb);
  for (usize i = 0; i < src.size(); ++i) src[i] = i * 3 + 1;
  std::vector<u64> expect;
  for (u64 b = 0; b < 4; ++b) {
    for (usize i = 0; i < rpb; ++i) {
      expect.push_back(src[static_cast<usize>(2 * b) * rpb + i]);
    }
  }
  WriteReq w{BlockRef{e.disk, e.index},
             reinterpret_cast<const std::byte*>(src.data()), 4,
             static_cast<i64>(2 * rpb * sizeof(u64))};
  ctx->write_batch(std::span<const WriteReq>(&w, 1));
  // Clobber the source: the ring must have copied the payload already.
  std::fill(src.begin(), src.end(), u64{0});
  std::vector<u64> got(4 * rpb);
  ReadReq r{BlockRef{e.disk, e.index}, reinterpret_cast<std::byte*>(got.data()),
            4};
  ctx->aio().read(std::span<const ReadReq>(&r, 1));
  EXPECT_EQ(got, expect);
  EXPECT_EQ(ctx->stats().blocks_written, 4u);
  EXPECT_EQ(ctx->stats().write_calls, 1u);
}

// A full external sort with extents+coalescing must move exactly the same
// blocks (and parallel ops — hence pass counts — and schedule hash
// composition per batch) as the block-at-a-time baseline, with a fraction
// of the backend calls, and produce the same sorted output.
TEST(ExtentIo, CoalescedSortMatchesBlockAtATimeBaseline) {
  // Geometry with multi-block per-disk spans per logical stream (each
  // unshuffle part covers several blocks of every disk), the shape the
  // extent layer is built for; degenerate geometries where every stream
  // touches each disk once per batch coalesce less, but identically on
  // both arms.
  const u64 mem = 4096;
  const usize rpb = 64;
  Rng rng(5);
  auto data = make_keys(4 * mem, Dist::kPermutation, rng);

  auto run_arm = [&](bool extents, IoStats* stats_out) {
    auto ctx = make_memory_context(4, rpb * sizeof(u64), 3);
    if (!extents) {
      ctx->set_extent_blocks(1);
      ctx->io().set_coalescing(false);
    }
    ctx->set_async_depth(4);
    auto in = write_input_run<u64>(*ctx, std::span<const u64>(data));
    ctx->io().reset_stats();
    AdaptiveOptions o;
    o.mem_records = mem;
    auto res = pdm_sort<u64>(*ctx, in, o);
    ctx->aio().drain();
    *stats_out = ctx->stats();
    auto v = res.output.read_all();
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
    EXPECT_EQ(v.size(), data.size());
    return v;
  };

  IoStats ext{}, base{};
  const auto out_ext = run_arm(true, &ext);
  const auto out_base = run_arm(false, &base);
  EXPECT_EQ(out_ext, out_base);
  EXPECT_EQ(ext.read_ops, base.read_ops) << "coalescing changed pass counts";
  EXPECT_EQ(ext.write_ops, base.write_ops);
  EXPECT_EQ(ext.blocks_read, base.blocks_read);
  EXPECT_EQ(ext.blocks_written, base.blocks_written);
  EXPECT_EQ(ext.disk_reads, base.disk_reads);
  EXPECT_EQ(ext.disk_writes, base.disk_writes);
  EXPECT_EQ(base.coalesced_ratio(), 1.0);
  EXPECT_GT(ext.coalesced_ratio(), 2.0);
  EXPECT_LT(ext.total_calls(), base.total_calls() / 2);
}

}  // namespace
}  // namespace pdm
