// Tests for the expected-pass algorithms (Theorems 3.2, 5.1, 6.1):
// success path pass counts, capacity formulas, on-line violation detection
// and the deterministic fallbacks under adversarial inputs.
#include <gtest/gtest.h>

#include "core/capacity.h"
#include "core/expected_three_pass.h"
#include "core/expected_two_pass.h"
#include "test_support.h"

namespace pdm {
namespace {

using test::Geometry;

TEST(Capacity, FormulasAreOrderedAsInThePaper) {
  const u64 m = 1u << 20;
  const double alpha = 1.0;
  // cap2 < M^1.5 (lambda > 1), cap3 between M^1.5 and M^1.75, etc.
  EXPECT_LT(cap_expected_two_pass(m, alpha), cap_three_pass(m, isqrt(m)));
  EXPECT_GT(cap_expected_three_pass(m, alpha), cap_three_pass(m, isqrt(m)));
  EXPECT_LT(cap_expected_three_pass(m, alpha), cap_seven_pass(m));
  EXPECT_LT(cap_expected_six_pass(m, alpha), cap_seven_pass(m));
  // Observation 4.1: LMM three-pass beats columnsort's M*sqrt(M/2).
  EXPECT_GT(cap_three_pass(m, isqrt(m)), cap_columnsort_cc(m));
}

TEST(Capacity, LowerBoundMatchesLemma21) {
  // Lemma 2.1 quotes the asymptotic bound: 2 passes for M^1.5 at
  // B = sqrt(M), 3 for M^2, and 1.75 when B = M^{1/3} (§8).
  const u64 m = 1u << 20;
  const u64 b = 1u << 10;
  EXPECT_NEAR(lower_bound_passes_asymptotic(m * b, m, b), 2.0, 1e-9);
  EXPECT_NEAR(lower_bound_passes_asymptotic(m * m, m, b), 3.0, 1e-9);
  const u64 m2 = 1u << 21;
  const u64 b2 = 1u << 7;
  EXPECT_NEAR(lower_bound_passes_asymptotic(
                  static_cast<u64>(std::pow(2.0, 31.5)), m2, b2),
              1.75, 0.01);
  // The exact finite-M Arge bound equals the paper's own expression
  // 2(1 - 1.45/lg M)/(1 + 6/lg M) at N = M^1.5 (which the paper calls
  // "very nearly 2"; at M = 2^20 it evaluates to ~1.43).
  const double lg_m = 20.0;
  const double paper_expr = 2.0 * (1 - 1.45 / lg_m) / (1 + 6.0 / lg_m);
  EXPECT_NEAR(lower_bound_passes(m * b, m, b), paper_expr, 0.02);
  // And it approaches the asymptotic form as M grows.
  EXPECT_LT(lower_bound_passes(m * b, m, b),
            lower_bound_passes_asymptotic(m * b, m, b));
}

class ExpTwoPassDist : public ::testing::TestWithParam<Dist> {};

TEST_P(ExpTwoPassDist, SortsRandomInputsInTwoPasses) {
  const auto g = Geometry::square(1024);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(static_cast<u64>(GetParam()) + 17);
  const u64 n = 4 * 1024;
  auto data = make_keys(static_cast<usize>(n), GetParam(), rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ExpectedTwoPassOptions opt;
  opt.mem_records = 1024;
  auto res = expected_two_pass_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  if (!res.report.fallback_taken) {
    test::expect_passes_near(res.report, 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Dists, ExpTwoPassDist,
                         ::testing::Values(Dist::kUniform, Dist::kPermutation,
                                           Dist::kFewDistinct, Dist::kZipf,
                                           Dist::kAllEqual),
                         [](const auto& info) {
                           std::string s = dist_name(info.param);
                           std::replace(s.begin(), s.end(), '-', '_');
                           return s;
                         });

TEST(ExpectedTwoPass, NoFallbackAcrossManySeedsWithinCapacity) {
  // Theorem 5.1 says failure probability <= M^-alpha; within capacity we
  // should never see a fallback over a modest number of seeds.
  const auto g = Geometry::square(1024);
  const u64 cap = cap_expected_two_pass(1024, 1.0);
  const u64 n = round_down(cap, 1024);
  ASSERT_GT(n, 0u);
  int fallbacks = 0;
  for (u64 seed = 0; seed < 20; ++seed) {
    auto ctx = test::make_ctx<u64>(g, seed + 1);
    Rng rng(seed);
    auto data = make_keys(static_cast<usize>(n), Dist::kPermutation, rng);
    auto in = test::stage_input<u64>(*ctx, data);
    ExpectedTwoPassOptions opt;
    opt.mem_records = 1024;
    auto res = expected_two_pass_sort<u64>(*ctx, in, opt);
    test::expect_sorted_output<u64>(res.output, data);
    if (res.report.fallback_taken) ++fallbacks;
  }
  EXPECT_EQ(fallbacks, 0);
}

TEST(ExpectedTwoPass, AdversarialRotationForcesFallback) {
  // A rotation by M/2 displaces every record by ~N/2 >> M after the
  // shuffle: detection must fire, the fallback must still sort, and the
  // total cost is the aborted attempt plus three deterministic passes.
  const auto g = Geometry::square(1024);
  auto ctx = test::make_ctx<u64>(g);
  const u64 n = 8 * 1024;
  auto data = make_rotated(static_cast<usize>(n), static_cast<usize>(n / 2));
  auto in = test::stage_input<u64>(*ctx, data);
  ExpectedTwoPassOptions opt;
  opt.mem_records = 1024;
  auto res = expected_two_pass_sort<u64>(*ctx, in, opt);
  EXPECT_TRUE(res.report.fallback_taken);
  test::expect_sorted_output<u64>(res.output, data);
  // 1 (runs) + aborted partial + 3 (lmm fallback) <= ~5.2 passes; at least 4.
  EXPECT_GE(res.report.passes, 4.0);
  EXPECT_LE(res.report.passes, 5.5);
}

TEST(ExpectedTwoPass, ResortFromScratchFallbackAlsoSorts) {
  const auto g = Geometry::square(1024);
  auto ctx = test::make_ctx<u64>(g);
  const u64 n = 8 * 1024;
  auto data = make_rotated(static_cast<usize>(n), static_cast<usize>(n / 2));
  auto in = test::stage_input<u64>(*ctx, data);
  ExpectedTwoPassOptions opt;
  opt.mem_records = 1024;
  opt.resort_from_scratch = true;  // the paper-literal fallback
  auto res = expected_two_pass_sort<u64>(*ctx, in, opt);
  EXPECT_TRUE(res.report.fallback_taken);
  test::expect_sorted_output<u64>(res.output, data);
  // 1 + partial + 3-pass re-sort (which rereads the raw input).
  EXPECT_GE(res.report.passes, 4.0);
}

TEST(ExpectedTwoPass, EnforceCapacityThrows) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  const u64 cap = cap_expected_two_pass(256, 1.0);
  const u64 n = round_up(cap + 256, 256);
  std::vector<u64> data(static_cast<usize>(n), 1);
  auto in = test::stage_input<u64>(*ctx, data);
  ExpectedTwoPassOptions opt;
  opt.mem_records = 256;
  opt.enforce_capacity = true;
  EXPECT_THROW(expected_two_pass_sort<u64>(*ctx, in, opt), Error);
}

TEST(ExpectedTwoPass, MeshVariantSortsAndMatchesEngine) {
  // Theorem 3.2's mesh formulation = same engine with column-length runs.
  const auto g = Geometry::square(1024);
  auto ctx = test::make_ctx<u64>(g);
  const u64 n = 32 * 256;  // 8192: columns of 256 = N/sqrt(M)
  Rng rng(33);
  auto data = make_keys(static_cast<usize>(n), Dist::kPermutation, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ExpectedTwoPassOptions opt;
  opt.mem_records = 1024;
  auto res = expected_two_pass_mesh_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  if (!res.report.fallback_taken) {
    test::expect_passes_near(res.report, 2.0);
  }
}

TEST(ExpectedTwoPass, SortedInputIsAdversarialForTheShuffle) {
  // Counter-intuitive but correct: already-sorted input makes the runs
  // disjoint consecutive ranges, so the shuffle interleaves them with
  // near-maximal displacement (run i's record t lands at t*N1 + i but
  // belongs at i*M + t). Detection must fire and the fallback must sort.
  // This is exactly why Theorem 5.1 is a statement about *random* inputs.
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  const u64 n = 16 * 256;
  Rng rng(1);
  auto data = make_keys(static_cast<usize>(n), Dist::kSorted, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ExpectedTwoPassOptions opt;
  opt.mem_records = 256;
  auto res = expected_two_pass_sort<u64>(*ctx, in, opt);
  EXPECT_TRUE(res.report.fallback_taken);
  test::expect_sorted_output<u64>(res.output, data);
}

TEST(ExpectedThreePass, SortsAtVariousSizes) {
  const u64 mem = 1024;
  const auto g = Geometry::square(mem);
  for (u64 segs : {2ull, 4ull, 8ull}) {
    auto ctx = test::make_ctx<u64>(g, segs);
    const u64 n = segs * 4 * mem;
    Rng rng(segs);
    auto data = make_keys(static_cast<usize>(n), Dist::kUniform, rng);
    auto in = test::stage_input<u64>(*ctx, data);
    ExpectedThreePassOptions opt;
    opt.mem_records = mem;
    opt.segment_len = 4 * mem;
    auto res = expected_three_pass_sort<u64>(*ctx, in, opt);
    test::expect_sorted_output<u64>(res.output, data);
    if (!res.report.fallback_taken) {
      test::expect_passes_near(res.report, 3.0, 0.25);
    }
  }
}

TEST(ExpectedThreePass, AutoSegmentChoiceWorks) {
  const u64 mem = 1024;
  const auto g = Geometry::square(mem);
  auto ctx = test::make_ctx<u64>(g);
  const u64 n = 16 * mem;
  Rng rng(9);
  auto data = make_keys(static_cast<usize>(n), Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ExpectedThreePassOptions opt;
  opt.mem_records = mem;
  auto res = expected_three_pass_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
}

TEST(ExpectedThreePass, AdversarialInputStillSorts) {
  const u64 mem = 1024;
  const auto g = Geometry::square(mem);
  auto ctx = test::make_ctx<u64>(g);
  const u64 n = 16 * mem;
  auto data = make_rotated(static_cast<usize>(n), static_cast<usize>(n / 2));
  auto in = test::stage_input<u64>(*ctx, data);
  ExpectedThreePassOptions opt;
  opt.mem_records = mem;
  opt.segment_len = 4 * mem;
  auto res = expected_three_pass_sort<u64>(*ctx, in, opt);
  EXPECT_TRUE(res.report.fallback_taken);
  test::expect_sorted_output<u64>(res.output, data);
}

TEST(ExpectedTwoPass, KvRecordsWithFallback) {
  // Payload integrity through the fallback path.
  const auto g = Geometry::square(256);
  auto ctx = make_memory_context(g.disks, g.rpb * sizeof(KV64));
  const u64 n = 8 * 256;
  std::vector<KV64> data(static_cast<usize>(n));
  for (usize i = 0; i < data.size(); ++i) {
    data[i] = KV64{(i + n / 2) % n, static_cast<u64>(i)};  // rotation
  }
  auto in = test::stage_input<KV64>(*ctx, data);
  ExpectedTwoPassOptions opt;
  opt.mem_records = 256;
  auto res = expected_two_pass_sort<KV64>(*ctx, in, opt);
  EXPECT_TRUE(res.report.fallback_taken);
  test::expect_key_sorted_permutation<KV64>(res.output, data);
}

}  // namespace
}  // namespace pdm
