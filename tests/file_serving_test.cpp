// Serving over real files: concurrent sort jobs through FileDiskBackend
// (pread/pwrite fd contention, real page cache) rather than the memory
// backend — the service is backend-agnostic and this is the proof. Both
// the single service and the sharded cluster (one directory of disk
// files per shard) are exercised; the file must be TSan-clean (CI runs
// it under -fsanitize=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "pdm/backend_factory.h"
#include "pdm/file_backend.h"
#include "test_support.h"
#include "util/generators.h"

namespace pdm {
namespace {

constexpr u64 kMem = 1024;
constexpr usize kBlockBytes = 256;
constexpr u32 kDisks = 4;

SortJobSpec spec_of(std::string name) {
  SortJobSpec s;
  s.name = std::move(name);
  s.mem_records = kMem;
  return s;
}

JobId submit_verified(SortService& svc, SortJobSpec spec,
                      std::vector<u64> data, std::atomic<int>& ok,
                      std::atomic<int>& bad) {
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  return svc.submit<u64>(
      std::move(spec), std::move(data), std::less<u64>{},
      [expected = std::move(expected), &ok, &bad](const SortResult<u64>& res) {
        auto got = res.output.read_all();
        if (got == expected) {
          ++ok;
        } else {
          ++bad;
        }
      });
}

TEST(FileServing, ConcurrentJobsOverFileBackend)
{
  const std::string dir = "/tmp/pdmsort_file_service_test";
  {
    auto backend =
        std::make_shared<FileDiskBackend>(kDisks, kBlockBytes, dir);
    ServiceConfig cfg;
    cfg.workers = 4;
    cfg.io_depth_total = 8;
    SortService svc(backend, cfg);
    Rng rng(1);
    std::atomic<int> ok{0}, bad{0};
    std::vector<JobId> ids;
    for (int i = 0; i < 12; ++i) {
      const u64 n = (i % 3 + 1) * 2 * kMem;
      ids.push_back(submit_verified(
          svc, spec_of("f" + std::to_string(i)),
          make_keys(static_cast<usize>(n), Dist::kPermutation, rng), ok,
          bad));
    }
    svc.drain();
    for (JobId id : ids) EXPECT_EQ(svc.wait(id).state, JobState::kDone);
    EXPECT_EQ(ok.load(), 12);
    EXPECT_EQ(bad.load(), 0);

    // The accounting invariant holds over real files too.
    const ServiceStats st = svc.stats();
    IoStats sum;
    sum.reset(kDisks);
    for (const JobInfo& j : svc.jobs()) {
      sum.read_ops += j.io.read_ops;
      sum.write_ops += j.io.write_ops;
      sum.blocks_read += j.io.blocks_read;
      sum.blocks_written += j.io.blocks_written;
    }
    EXPECT_EQ(sum.read_ops, st.io.read_ops);
    EXPECT_EQ(sum.write_ops, st.io.write_ops);
    EXPECT_EQ(sum.blocks_read, st.io.blocks_read);
    EXPECT_EQ(sum.blocks_written, st.io.blocks_written);
  }
  std::filesystem::remove_all(dir);
}

TEST(FileServing, DeadlineCalibrationLearnsWallClock)
{
  const std::string dir = "/tmp/pdmsort_cal_test";
  {
    auto backend =
        std::make_shared<FileDiskBackend>(kDisks, kBlockBytes, dir);
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.deadline_admission = true;  // calibration is on by default
    // A cost model that over-prices this backend by orders of magnitude:
    // model time says minutes per job, the real files take milliseconds.
    // Uncalibrated deadline admission would turn away perfectly
    // serviceable work.
    cfg.cost.seek_s = 1.0;
    cfg.cost.bytes_per_s = 1.0e3;
    SortService svc(backend, cfg);
    Rng rng(41);
    // Uncalibrated, a 10 s deadline reads as unmeetable (model estimate
    // is ~minutes) and the job is rejected up front.
    SortJobSpec early = spec_of("early");
    early.deadline_s = 10.0;
    const JobInfo rejected = svc.wait(
        svc.submit<u64>(early, make_keys(4 * kMem, Dist::kPermutation,
                                         rng)));
    EXPECT_EQ(rejected.state, JobState::kRejected);
    EXPECT_NE(rejected.error.find("deadline admission"), std::string::npos);
    // Training: undeadlined jobs of the same shape complete in wall-clock
    // milliseconds, pulling the EMA of observed-over-modeled seconds far
    // below 1.
    std::atomic<int> ok{0}, bad{0};
    for (int i = 0; i < 4; ++i) {
      submit_verified(svc, spec_of("train" + std::to_string(i)),
                      make_keys(4 * kMem, Dist::kPermutation, rng), ok, bad);
    }
    svc.drain();
    EXPECT_EQ(ok.load(), 4);
    EXPECT_EQ(bad.load(), 0);
    const double cal = svc.stats().deadline_cal;
    EXPECT_GT(cal, 0.0);
    EXPECT_LT(cal, 0.01) << "file backend should run far under this model";
    // Calibrated, the identical deadlined job is admitted — and makes its
    // deadline comfortably.
    SortJobSpec late = spec_of("late");
    late.deadline_s = 10.0;
    const JobInfo admitted = svc.wait(
        svc.submit<u64>(late, make_keys(4 * kMem, Dist::kPermutation,
                                        rng)));
    EXPECT_EQ(admitted.state, JobState::kDone);
    EXPECT_FALSE(admitted.deadline_missed);
    EXPECT_EQ(svc.stats().rejected, 1u);
  }
  std::filesystem::remove_all(dir);
}

TEST(FileServing, ClusterOverPerShardFileArrays)
{
  const std::string dir = "/tmp/pdmsort_file_cluster_test";
  {
    ClusterConfig cfg;
    cfg.shards = 2;
    cfg.policy = RoutePolicy::kLocalityHash;
    cfg.shard.workers = 2;
    // Placement affinity in isolation: no hold-queue stealing, so both
    // jobs of a tenant stay on the hash-placed shard however busy it is.
    cfg.hold_queue = false;
    Cluster cluster(file_backend_factory(kDisks, kBlockBytes, dir), cfg);
    // Each shard got its own directory of disk files.
    EXPECT_TRUE(std::filesystem::exists(dir + "/shard000/disk000.bin"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/shard001/disk000.bin"));
    Rng rng(2);
    std::atomic<u64> verified{0};
    std::vector<JobId> ids;
    const char* tenants[] = {"t0", "t1", "t2", "t3"};
    for (int i = 0; i < 8; ++i) {
      SortJobSpec spec = spec_of("c" + std::to_string(i));
      spec.locality_key = tenants[i % 4];
      ids.push_back(cluster.submit<u64>(
          spec, make_keys(2 * kMem, Dist::kPermutation, rng),
          std::less<u64>{}, [&verified](const SortResult<u64>& res) {
            auto v = res.output.read_all();
            for (usize k = 1; k < v.size(); ++k) {
              PDM_CHECK(v[k - 1] <= v[k], "cluster file output unsorted");
            }
            ++verified;
          }));
    }
    cluster.drain();
    for (JobId id : ids) EXPECT_EQ(cluster.wait(id).state, JobState::kDone);
    EXPECT_EQ(verified.load(), 8u);
    const ClusterStats st = cluster.stats();
    EXPECT_EQ(st.completed, 8u);
    // Tenant affinity held: both jobs of a tenant share a shard.
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(cluster.shard_of(ids[static_cast<usize>(i)]),
                cluster.shard_of(ids[static_cast<usize>(i + 4)]));
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pdm
