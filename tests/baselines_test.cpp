// Tests for the baselines: Chaudhry–Cormen 3-pass columnsort and the
// forecasting multiway mergesort.
#include <gtest/gtest.h>

#include "baselines/columnsort.h"
#include "baselines/multiway_merge.h"
#include "core/three_pass_lmm.h"
#include "test_support.h"

namespace pdm {
namespace {

using test::Geometry;

TEST(ColumnsortGeometry, RespectsLeightonConstraint) {
  for (u64 mem : {256ull, 1024ull, 4096ull}) {
    const u64 rpb = isqrt(mem);
    const u64 n = max_columnsort_n(mem, rpb);
    ASSERT_GT(n, 0u);
    auto g = columnsort_geometry(n, mem, rpb);
    ASSERT_TRUE(g.ok);
    EXPECT_EQ(g.rows * g.cols, n);
    EXPECT_LE(g.rows, mem);
    EXPECT_GE(g.rows, 2 * (g.cols - 1) * (g.cols - 1));
    EXPECT_EQ(g.rows % g.cols, 0u);
    EXPECT_EQ((g.rows / g.cols) % rpb, 0u);
    // Capacity is within a small constant of M*sqrt(M/2) (alignment loss).
    EXPECT_GT(n, cap_columnsort_cc(mem) / 3);
    EXPECT_LE(n, cap_columnsort_cc(mem));
  }
}

class ColumnsortDist : public ::testing::TestWithParam<Dist> {};

TEST_P(ColumnsortDist, SortsAtMaxCapacity) {
  const u64 mem = 1024;
  const auto g = Geometry::square(mem);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(static_cast<u64>(GetParam()) * 5 + 3);
  const u64 n = max_columnsort_n(mem, g.rpb);
  auto data = make_keys(static_cast<usize>(n), GetParam(), rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ColumnsortOptions opt;
  opt.mem_records = mem;
  auto res = columnsort_cc_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  test::expect_passes_near(res.report, 3.0, 0.2);
}

INSTANTIATE_TEST_SUITE_P(Dists, ColumnsortDist,
                         ::testing::Values(Dist::kUniform, Dist::kSorted,
                                           Dist::kReverse, Dist::kAllEqual,
                                           Dist::kZipf, Dist::kFewDistinct),
                         [](const auto& info) {
                           std::string s = dist_name(info.param);
                           std::replace(s.begin(), s.end(), '-', '_');
                           return s;
                         });

TEST(Columnsort, ExplicitGeometry) {
  const u64 mem = 1024;
  const auto g = Geometry::square(mem);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(7);
  // r = 512, c = 8: r >= 2*49 = 98, p = 64 = 2B.
  const u64 n = 512 * 8;
  auto data = make_keys(static_cast<usize>(n), Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ColumnsortOptions opt;
  opt.mem_records = mem;
  opt.rows = 512;
  opt.cols = 8;
  auto res = columnsort_cc_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
}

TEST(Columnsort, ManySeeds) {
  const u64 mem = 256;
  const auto g = Geometry::square(mem);
  const u64 n = max_columnsort_n(mem, g.rpb);
  ASSERT_GT(n, 0u);
  for (u64 seed = 0; seed < 15; ++seed) {
    auto ctx = test::make_ctx<u64>(g, seed + 1);
    Rng rng(seed);
    auto data = make_keys(static_cast<usize>(n), Dist::kUniform, rng);
    auto in = test::stage_input<u64>(*ctx, data);
    ColumnsortOptions opt;
    opt.mem_records = mem;
    auto res = columnsort_cc_sort<u64>(*ctx, in, opt);
    test::expect_sorted_output<u64>(res.output, data);
  }
}

TEST(Columnsort, RejectsInfeasibleGeometry) {
  const u64 mem = 256;
  const auto g = Geometry::square(mem);
  auto ctx = test::make_ctx<u64>(g);
  std::vector<u64> data(1000, 1);  // no valid (r, c) factorization
  auto in = test::stage_input<u64>(*ctx, data);
  ColumnsortOptions opt;
  opt.mem_records = mem;
  EXPECT_THROW(columnsort_cc_sort<u64>(*ctx, in, opt), Error);
}

TEST(Columnsort, CapacityBelowLmmThreePass) {
  // Observation 4.1: LMM's 3-pass capacity is M^1.5 vs columnsort's
  // M*sqrt(M/2) — a factor sqrt(2).
  for (u64 mem : {1024ull, 4096ull, 16384ull}) {
    EXPECT_GT(cap_three_pass(mem, isqrt(mem)),
              static_cast<u64>(1.3 * static_cast<double>(
                                         cap_columnsort_cc(mem))));
  }
}

class MultiwaySortDist : public ::testing::TestWithParam<Dist> {};

TEST_P(MultiwaySortDist, Sorts) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(static_cast<u64>(GetParam()) + 41);
  auto data = make_keys(6400, GetParam(), rng);  // ragged run count
  auto in = test::stage_input<u64>(*ctx, data);
  MultiwaySortOptions opt;
  opt.mem_records = 256;
  auto res = multiway_merge_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
}

INSTANTIATE_TEST_SUITE_P(Dists, MultiwaySortDist,
                         ::testing::Values(Dist::kUniform, Dist::kSorted,
                                           Dist::kReverse, Dist::kZipf,
                                           Dist::kAllEqual),
                         [](const auto& info) {
                           std::string s = dist_name(info.param);
                           std::replace(s.begin(), s.end(), '-', '_');
                           return s;
                         });

TEST(MultiwaySort, TwoPassesWithBigFanIn) {
  // N = 8M with fan-in >= 8: run formation + one merge level = 2 passes
  // of data volume (parallel-op passes depend on forecasting).
  const auto g = Geometry::square(1024);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(5);
  auto data = make_keys(8 * 1024, Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  MultiwaySortOptions opt;
  opt.mem_records = 1024;
  opt.lookahead = 2;
  auto res = multiway_merge_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  const double vol_passes =
      static_cast<double>(res.report.io.blocks_read) /
      (static_cast<double>(data.size()) / g.rpb);
  EXPECT_NEAR(vol_passes, 2.0, 0.05);
}

TEST(MultiwaySort, MultipleLevelsWithSmallFanIn) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(6);
  auto data = make_keys(16 * 256, Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  MultiwaySortOptions opt;
  opt.mem_records = 256;
  opt.fan_in = 4;  // 16 runs -> 4 -> 1: two merge levels
  auto res = multiway_merge_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  const double vol_passes =
      static_cast<double>(res.report.io.blocks_read) /
      (static_cast<double>(data.size()) / g.rpb);
  EXPECT_NEAR(vol_passes, 3.0, 0.05);
  EXPECT_NEAR(multiway_predicted_passes(16 * 256, 256, 4), 3.0, 1e-9);
}

TEST(MultiwaySort, ForecastingBeatsNaiveOnParallelOps) {
  // Same fan-in for both configurations (auto fan-in shrinks with
  // lookahead, which would change the number of merge levels).
  const auto g = Geometry::square(1024);  // D = 8
  Rng rng(7);
  auto data = make_keys(16 * 1024, Dist::kUniform, rng);
  u64 ops_naive, ops_forecast;
  {
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, data);
    MultiwaySortOptions opt;
    opt.mem_records = 4096;
    opt.fan_in = 16;
    opt.lookahead = 0;
    auto res = multiway_merge_sort<u64>(*ctx, in, opt);
    ops_naive = res.report.io.read_ops;
  }
  {
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, data);
    MultiwaySortOptions opt;
    opt.mem_records = 4096;
    opt.fan_in = 16;
    opt.lookahead = 2;
    auto res = multiway_merge_sort<u64>(*ctx, in, opt);
    ops_forecast = res.report.io.read_ops;
  }
  EXPECT_LT(ops_forecast * 2, ops_naive);
}

TEST(MultiwaySort, AdversarialInputDefeatsAnyLookahead) {
  // make_merge_adversary arranges keys so every merge wave's blocks live
  // on one disk: utilization stays near 1 block/op regardless of
  // prefetch depth, while the oblivious ThreePass2 is unaffected.
  const auto g = Geometry::square(4096);  // B = 64, D = 16
  const u64 runs = 8;
  const u64 n = runs * 4096;
  auto data = make_merge_adversary(runs, 4096, 64, g.disks,
                                   flat_run_start_stride(g.disks));
  double util_adv, util_rand;
  {
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, data);
    MultiwaySortOptions opt;
    opt.mem_records = 4096;
    opt.lookahead = 4;
    opt.fan_in = runs;
    auto res = multiway_merge_sort<u64>(*ctx, in, opt);
    test::expect_sorted_output<u64>(res.output, data);
    util_adv = static_cast<double>(res.report.io.blocks_read) /
               static_cast<double>(res.report.io.read_ops);
  }
  {
    auto ctx = test::make_ctx<u64>(g);
    Rng rng(1);
    auto rnd = make_keys(static_cast<usize>(n), Dist::kUniform, rng);
    auto in = test::stage_input<u64>(*ctx, rnd);
    MultiwaySortOptions opt;
    opt.mem_records = 4096;
    opt.lookahead = 4;
    opt.fan_in = runs;
    auto res = multiway_merge_sort<u64>(*ctx, in, opt);
    util_rand = static_cast<double>(res.report.io.blocks_read) /
                static_cast<double>(res.report.io.read_ops);
  }
  EXPECT_LT(util_adv, 3.5);
  EXPECT_GT(util_rand, util_adv + 1.0);
  // The oblivious sort's schedule (and cost) is identical on the
  // adversarial input.
  {
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, data);
    ThreePassLmmOptions opt;
    opt.mem_records = 4096;
    auto res = three_pass_lmm_sort<u64>(*ctx, in, opt);
    test::expect_sorted_output<u64>(res.output, data);
    test::expect_passes_near(res.report, 3.0);
  }
}

TEST(MultiwaySort, NotOblivious) {
  // The I/O schedule depends on the data: two different inputs of the
  // same size produce different schedule hashes (almost surely).
  const auto g = Geometry::square(256);
  Rng rng(8);
  auto a = make_keys(2048, Dist::kUniform, rng);
  auto b = make_keys(2048, Dist::kUniform, rng);
  u64 ha, hb;
  {
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, a);
    MultiwaySortOptions opt;
    opt.mem_records = 256;
    (void)multiway_merge_sort<u64>(*ctx, in, opt);
    ha = ctx->stats().schedule_hash;
  }
  {
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, b);
    MultiwaySortOptions opt;
    opt.mem_records = 256;
    (void)multiway_merge_sort<u64>(*ctx, in, opt);
    hb = ctx->stats().schedule_hash;
  }
  EXPECT_NE(ha, hb);
}

}  // namespace
}  // namespace pdm
