// Quickstart: sort a million 8-byte keys on eight simulated disks with the
// adaptive planner, then print the report.
//
//   ./quickstart [--n=1048576] [--m=16384] [--disks=8] [--file-backed]
//
// Walks through the full public API surface: build a PdmContext, stage
// input as a striped run, call pdm_sort, inspect the SortReport.
#include <iostream>

#include "core/adaptive.h"
#include "util/cli.h"
#include "util/generators.h"

using namespace pdm;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const u64 mem = cli.get_u64("m", 16384);       // M: records of memory
  const u64 n = cli.get_u64("n", 1u << 20);       // N: records to sort
  const u32 disks = static_cast<u32>(cli.get_u64("disks", 8));
  const u64 block_records = isqrt(mem);           // the paper's B = sqrt(M)

  // 1. A PDM machine: D disks of B-record blocks.
  std::unique_ptr<PdmContext> ctx =
      cli.get_bool("file-backed", false)
          ? make_file_context(disks, block_records * sizeof(u64),
                              "/tmp/pdmsort_quickstart")
          : make_memory_context(disks, block_records * sizeof(u64));

  // 2. Stage the input as a striped run (round-robin blocks over disks).
  Rng rng(cli.get_u64("seed", 1));
  std::vector<u64> data = make_keys(static_cast<usize>(n), Dist::kUniform,
                                    rng);
  StripedRun<u64> input = write_input_run<u64>(*ctx, std::span<const u64>(data));
  ctx->io().reset_stats();  // measure the sort, not the staging

  // 3. Let the planner pick the cheapest algorithm from the paper.
  const PlanEntry plan = choose_plan(n, mem, block_records, /*alpha=*/1.0);
  std::cout << "planner: N=" << n << " M=" << mem << " B=" << block_records
            << " D=" << disks << " -> " << algo_name(plan.algo) << " ("
            << plan.expected_passes << " expected passes; " << plan.note
            << ")\n";

  AdaptiveOptions opt;
  opt.mem_records = mem;
  SortResult<u64> result = pdm_sort<u64>(*ctx, input, opt);

  // 4. Verify and report.
  auto sorted = result.output.read_all();
  std::sort(data.begin(), data.end());
  PDM_CHECK(sorted == data, "output mismatch");

  const SortReport& r = result.report;
  std::cout << "sorted " << n << " records with " << r.algorithm << "\n"
            << "  passes:        " << r.passes << " (" << r.read_passes
            << " read + " << r.write_passes << " write)\n"
            << "  parallel I/Os: " << r.io.read_ops << " reads, "
            << r.io.write_ops << " writes\n"
            << "  utilization:   " << r.utilization << " of " << r.disks
            << " disks per I/O\n"
            << "  fallback:      " << (r.fallback_taken ? "yes" : "no")
            << "\n"
            << "  wall time:     " << r.wall_seconds << " s\n"
            << "  simulated I/O: " << r.sim_seconds << " s (at "
            << ctx->io().cost().bytes_per_s / 1e6 << " MB/s/disk + "
            << ctx->io().cost().seek_s * 1e3 << " ms seeks)\n";
  return 0;
}
