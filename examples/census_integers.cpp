// Integer-key sorting (§7): records keyed by small integers — the paper's
// examples are SSN-style identifiers, weather and market data, where keys
// fit well within a machine word. Compares RadixSort against the
// comparison-based ThreePass2 at the same N, and demonstrates single-round
// IntegerSort when the key range is at most M/B.
#include <iostream>

#include "core/integer_sort.h"
#include "core/radix_sort.h"
#include "core/three_pass_lmm.h"
#include "util/cli.h"
#include "util/generators.h"
#include "util/table.h"

using namespace pdm;

namespace {

struct CensusRecord {
  u32 person_id;   // the sort key: a 32-bit identifier
  u16 region;
  u16 age;
  u64 payload;     // pointer/offset to the full record

  friend bool operator==(const CensusRecord&, const CensusRecord&) = default;
};
static_assert(sizeof(CensusRecord) == 16);

}  // namespace

namespace pdm {
template <>
struct KeyTraits<CensusRecord> {
  static constexpr u64 key(const CensusRecord& r) noexcept {
    return r.person_id;
  }
};
}  // namespace pdm

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const u64 mem = cli.get_u64("m", 4096);
  const u64 n = cli.get_u64("n", 64 * mem);
  const u64 b = isqrt(mem);
  const u32 disks = static_cast<u32>(b / 4);

  Rng rng(11);
  std::vector<CensusRecord> people(static_cast<usize>(n));
  for (usize i = 0; i < people.size(); ++i) {
    people[i] = CensusRecord{static_cast<u32>(rng.next()),
                             static_cast<u16>(rng.below(50)),
                             static_cast<u16>(rng.below(100)),
                             static_cast<u64>(i)};
  }

  std::cout << "Sorting " << n << " census records by 32-bit person_id (M="
            << mem << ", B=" << b << ", D=" << disks << ")\n\n";
  Table t({"method", "passes", "read-passes", "write-passes", "note"});

  {
    auto ctx = make_memory_context(disks, b * sizeof(CensusRecord));
    auto input = write_input_run<CensusRecord>(
        *ctx, std::span<const CensusRecord>(people));
    ctx->io().reset_stats();
    RadixSortOptions opt;
    opt.mem_records = mem;
    opt.key_bits = 32;
    auto res = radix_sort<CensusRecord>(*ctx, input, opt);
    auto sorted = res.output.read_all();
    for (usize i = 1; i < sorted.size(); ++i) {
      PDM_CHECK(sorted[i - 1].person_id <= sorted[i].person_id, "disorder");
    }
    t.row()
        .cell("RadixSort (Thm 7.2)")
        .cell(res.report.passes, 3)
        .cell(res.report.read_passes, 3)
        .cell(res.report.write_passes, 3)
        .cell("any N; constant passes for random keys");
  }
  {
    auto ctx = make_memory_context(disks, b * sizeof(CensusRecord));
    auto input = write_input_run<CensusRecord>(
        *ctx, std::span<const CensusRecord>(people));
    ctx->io().reset_stats();
    ThreePassLmmOptions opt;
    opt.mem_records = mem;
    auto res = three_pass_lmm_sort<CensusRecord>(
        *ctx, input, opt, [](const CensusRecord& a, const CensusRecord& b2) {
          return a.person_id < b2.person_id;
        });
    t.row()
        .cell("ThreePass2 (comparison)")
        .cell(res.report.passes, 3)
        .cell(res.report.read_passes, 3)
        .cell(res.report.write_passes, 3)
        .cell("N <= M*min(B, M/B)");
  }
  {
    // When the key range is tiny (e.g. region codes, 0..49 < M/B), a
    // single IntegerSort round suffices: (1+mu) passes, Theorem 7.1.
    auto ctx = make_memory_context(disks, b * sizeof(CensusRecord));
    std::vector<CensusRecord> by_region = people;
    for (auto& p : by_region) p.person_id = p.region;  // key by region
    auto input = write_input_run<CensusRecord>(
        *ctx, std::span<const CensusRecord>(by_region));
    ctx->io().reset_stats();
    IntegerSortOptions opt;
    opt.mem_records = mem;
    opt.range = 50;
    opt.staged = true;
    auto res = integer_sort<CensusRecord>(*ctx, input, opt);
    t.row()
        .cell("IntegerSort by region (Thm 7.1, staged)")
        .cell(res.report.passes, 3)
        .cell(res.report.read_passes, 3)
        .cell(res.report.write_passes, 3)
        .cell("range 50 <= M/B; 2(1+mu) with placement");
  }
  t.print(std::cout);
  std::cout << "All outputs verified key-ordered; payloads travel with "
               "their keys.\n";
  return 0;
}
