// Sort-as-a-service demo: submit a mixed workload of concurrent sort
// jobs to a pdm::SortService over one shared simulated disk array, then
// print the per-job outcomes and the serving aggregates.
//
//   ./example_sort_service                       # built-in mixed workload
//   ./example_sort_service --workers=8 --latency_us=100
//   ./example_sort_service --spec=workload.txt
//   ./example_sort_service --trace-out=trace.json --metrics=1
//
// --trace-out=FILE enables the phase tracer and dumps Chrome trace_event
// JSON on exit; --metrics=1 prints the metrics registry after the run.
//
// Spec file: one job per line, '#' comments:
//   <name> <type:u64|kv64|i32> <n> <mem_records> [priority] [deadline_ms]
// e.g.
//   weblog   u64  16384 4096 1
//   sessions kv64  8192 4096 0 500
#include <atomic>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "pdm/memory_backend.h"
#include "service/sort_service.h"
#include "util/cli.h"
#include "util/generators.h"
#include "util/metrics.h"
#include "util/table.h"
#include "util/trace.h"

using namespace pdm;

namespace {

struct JobLine {
  std::string name;
  std::string type;
  u64 n = 0;
  u64 mem = 0;
  int priority = 0;
  double deadline_ms = 0;
};

std::vector<JobLine> parse_spec(const std::string& path) {
  std::ifstream in(path);
  PDM_CHECK(in.good(), "cannot open spec file: " + path);
  std::vector<JobLine> jobs;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    JobLine j;
    if (!(ls >> j.name >> j.type >> j.n >> j.mem)) continue;
    ls >> j.priority >> j.deadline_ms;
    jobs.push_back(std::move(j));
  }
  PDM_CHECK(!jobs.empty(), "spec file has no jobs: " + path);
  return jobs;
}

std::vector<JobLine> default_workload(u64 mem) {
  std::vector<JobLine> jobs;
  const char* types[] = {"u64", "kv64", "i32"};
  const u64 sizes[] = {mem / 2, 2 * mem, 4 * mem, 8 * mem};
  int i = 0;
  for (u64 n : sizes) {
    for (const char* t : types) {
      jobs.push_back(JobLine{std::string(t) + "-" + std::to_string(n), t, n,
                             mem, i % 3, 0});
      ++i;
    }
  }
  // A burst of tiny same-type jobs at the tail: these queue up behind the
  // big sorts and coalesce into batched worker tasks.
  for (int b = 0; b < 6; ++b) {
    jobs.push_back(JobLine{"u64-burst-" + std::to_string(b), "u64", mem / 4,
                           mem, 0, 0});
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const u64 mem = cli.get_u64("mem", 4096);
  const auto jobs = cli.has("spec") ? parse_spec(cli.get("spec", ""))
                                    : default_workload(mem);
  const std::string trace_out = cli.get("trace-out", "");
  const bool print_metrics = cli.get_u64("metrics", 0) != 0;
  if (!trace_out.empty()) {
    trace::TraceLog::instance().set_enabled(true);
    trace::TraceLog::instance().set_thread_name("main");
  }

  const u64 s = isqrt(mem);
  PDM_CHECK(s * s == mem, "--mem must be a perfect square");
  const u32 disks = static_cast<u32>(std::max<u64>(1, s / 4));
  auto backend =
      std::make_shared<MemoryDiskBackend>(disks, s * sizeof(KV64));
  backend->set_simulated_latency_us(cli.get_u64("latency_us", 100));

  ServiceConfig cfg;
  cfg.workers = static_cast<usize>(cli.get_u64("workers", 4));
  cfg.io_depth_total = static_cast<usize>(cli.get_u64("io_depth", 8));
  cfg.total_memory_bytes =
      static_cast<usize>(cli.get_u64("service_mb", 256)) << 20;
  cfg.small_job_records = cli.get_u64("small_job_records", mem);
  SortService svc(backend, cfg);

  std::cout << "SortService: " << cfg.workers << " workers, D = " << disks
            << ", io_depth_total = " << cfg.io_depth_total << ", budget = "
            << (cfg.total_memory_bytes >> 20) << " MiB, " << jobs.size()
            << " jobs\n\n";

  Rng rng(cli.get_u64("seed", 1));
  std::atomic<u64> verified{0};
  std::vector<JobId> ids;
  for (const JobLine& line : jobs) {
    SortJobSpec spec;
    spec.name = line.name;
    spec.mem_records = line.mem;
    spec.priority = line.priority;
    spec.deadline_s = line.deadline_ms / 1000.0;
    auto verify = [&verified](const auto& res) {
      auto v = res.output.read_all();
      for (usize i = 1; i < v.size(); ++i) {
        PDM_CHECK(!(v[i] < v[i - 1]), "service output not sorted");
      }
      ++verified;
    };
    const usize count = static_cast<usize>(line.n);
    if (line.type == "u64") {
      ids.push_back(svc.submit<u64>(spec, make_keys(count, Dist::kZipf, rng),
                                    std::less<u64>{}, verify));
    } else if (line.type == "kv64") {
      ids.push_back(svc.submit<KV64>(spec,
                                     make_kv(count, Dist::kUniform, rng),
                                     std::less<KV64>{}, verify));
    } else if (line.type == "i32") {
      std::vector<std::int32_t> data(count);
      for (auto& x : data) x = static_cast<std::int32_t>(rng.next());
      ids.push_back(svc.submit<std::int32_t>(
          spec, std::move(data), std::less<std::int32_t>{}, verify));
    } else {
      fail("unknown record type in spec: " + line.type);
    }
  }
  svc.drain();

  Table t({"job", "state", "algorithm", "n", "passes", "queue_ms", "run_ms",
           "batched", "deadline_ok"});
  for (JobId id : ids) {
    const JobInfo j = svc.info(id);
    t.row()
        .cell(j.name)
        .cell(job_state_name(j.state))
        .cell(j.algorithm.empty() ? "-" : j.algorithm)
        .cell(j.n)
        .cell(j.state == JobState::kDone ? fmt_double(j.report.passes, 2)
                                         : std::string("-"))
        .cell(j.queue_s * 1e3, 1)
        .cell(j.run_s * 1e3, 1)
        .cell(j.batched)
        .cell(!j.deadline_missed);
  }
  t.print(std::cout);

  const ServiceStats st = svc.stats();
  std::cout << "jobs: " << st.completed << " done, " << st.failed
            << " failed, " << st.cancelled << " cancelled, " << st.rejected
            << " rejected; " << verified.load() << " outputs verified\n"
            << "throughput: " << fmt_double(st.jobs_per_sec, 1)
            << " jobs/s over a " << fmt_double(st.busy_window_s, 3)
            << "s busy window; queue p50 "
            << fmt_double(st.queue_p50_s * 1e3, 1) << "ms, p99 "
            << fmt_double(st.queue_p99_s * 1e3, 1) << "ms\n"
            << "planner: " << st.plan_cache_misses << " plans computed, "
            << st.plan_cache_hits << " reused; " << st.batches_run
            << " worker tasks for " << st.submitted << " jobs\n"
            << "memory: peak reservations "
            << fmt_count(st.peak_memory_bytes) << "B of "
            << fmt_count(cfg.total_memory_bytes) << "B\n"
            << "service I/O: " << st.io.total_ops() << " parallel ops, "
            << st.io.total_blocks() << " blocks, utilization "
            << fmt_double(st.io.utilization(), 2) << "/" << disks << "\n";
  if (print_metrics) {
    std::cout << "\n-- metrics --\n" << metrics::Registry::global().text();
  }
  if (!trace_out.empty()) {
    if (trace::TraceLog::instance().write_chrome_json(trace_out)) {
      std::cout << "trace: wrote " << trace_out << " ("
                << trace::TraceLog::instance().snapshot().size()
                << " events, " << trace::TraceLog::instance().dropped()
                << " dropped)\n";
    } else {
      std::cerr << "trace: could not write " << trace_out << "\n";
    }
  }
  // Nonzero exit on any failure so CI smoke runs catch regressions.
  if (st.failed != 0 || st.rejected != 0 ||
      verified.load() != st.completed) {
    std::cerr << "FAIL: " << st.failed << " failed, " << st.rejected
              << " rejected, " << verified.load() << "/" << st.completed
              << " verified\n";
    return 1;
  }
  return 0;
}
