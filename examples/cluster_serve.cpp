// Cluster serving demo: a pdm::Cluster of SortService shards behind a
// routing policy, fed a multi-tenant workload. Prints each shard's view
// of the traffic, the routing quality (placement counts, spills,
// imbalance), and the cluster totals with the exact-sum I/O invariant.
//
//   ./example_cluster_serve                         # 4 shards, least_loaded
//   ./example_cluster_serve --shards=2 --policy=locality_hash
//   ./example_cluster_serve --tenants=12 --jobs=64 --seek_us=400
//   ./example_cluster_serve --trace-out=trace.json --metrics=1
//   ./example_cluster_serve --introspect-every=1 --force-deadline-miss=1
//
// --trace-out=FILE enables the phase tracer and dumps Chrome trace_event
// JSON on exit (open in chrome://tracing or https://ui.perfetto.dev);
// --metrics=1 prints the metrics registry (counters/gauges/histograms,
// per-span totals) after the run. --introspect-every=N prints a live
// introspect::StateDump every N seconds while the workload runs; SIGUSR1
// triggers one on demand at any time. --force-deadline-miss=1 submits an
// extra job with an unmeetable deadline and prints its flight-recorder
// dump after the run (the black box a server would emit on a bad end).
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "pdm/backend_factory.h"
#include "util/cli.h"
#include "util/generators.h"
#include "util/jobtrace.h"
#include "util/table.h"
#include "util/trace.h"

using namespace pdm;

namespace {

// SIGUSR1 -> dump on the next monitor poll (signal-safe: flag set only).
volatile std::sig_atomic_t g_introspect_requested = 0;
void on_sigusr1(int) { g_introspect_requested = 1; }

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const usize shards = static_cast<usize>(cli.get_u64("shards", 4));
  const u64 mem = cli.get_u64("mem", 16384);
  const u64 num_jobs = cli.get_u64("jobs", 32);
  const u64 tenants = cli.get_u64("tenants", 6);
  const u32 disks_total = static_cast<u32>(cli.get_u64("disks", 8));
  const usize workers_total = static_cast<usize>(cli.get_u64("workers", 4));
  const RoutePolicy policy =
      route_policy_from_name(cli.get("policy", "least_loaded"));
  const std::string trace_out = cli.get("trace-out", "");
  const bool print_metrics = cli.get_u64("metrics", 0) != 0;
  const u64 introspect_every = cli.get_u64("introspect-every", 0);
  const bool force_deadline_miss = cli.get_u64("force-deadline-miss", 0) != 0;
  if (!trace_out.empty()) {
    trace::TraceLog::instance().set_enabled(true);
    trace::TraceLog::instance().set_thread_name("main");
  }
  std::signal(SIGUSR1, on_sigusr1);

  const u64 rpb = isqrt(mem);
  PDM_CHECK(rpb * rpb == mem, "--mem must be a perfect square");
  PDM_CHECK(disks_total % shards == 0 && workers_total % shards == 0,
            "--shards must divide --disks and --workers");

  StreamModel stream;
  stream.seq_us = cli.get_u64("seq_us", 10);
  stream.seek_us = cli.get_u64("seek_us", 200);

  ClusterConfig cfg;
  cfg.shards = shards;
  cfg.policy = policy;
  cfg.shard.workers = workers_total / shards;
  cfg.shard.io_depth_total = 8 / std::min<usize>(shards, 8);
  cfg.shard.total_memory_bytes =
      (static_cast<usize>(cli.get_u64("cluster_mb", 256)) << 20) / shards;
  cfg.shard.retain_terminal_max = 1024;  // long-lived serving: bound records
  Cluster cluster(
      memory_backend_factory(disks_total / static_cast<u32>(shards),
                             static_cast<usize>(rpb) * sizeof(u64), 0,
                             stream),
      cfg);

  std::cout << "Cluster: " << shards << " shards ("
            << route_policy_name(policy) << ") x " << cfg.shard.workers
            << " workers, D = " << disks_total / shards
            << " per shard, budget = "
            << (cfg.shard.total_memory_bytes >> 20) << " MiB per shard; "
            << num_jobs << " jobs from " << tenants << " tenants\n\n";

  // Live introspection: a monitor thread polls ~5x/s, dumping the cluster
  // state every --introspect-every seconds and whenever SIGUSR1 arrives.
  std::atomic<bool> monitor_stop{false};
  std::thread monitor([&] {
    auto last = std::chrono::steady_clock::now();
    while (!monitor_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      const auto now = std::chrono::steady_clock::now();
      const bool periodic =
          introspect_every > 0 &&
          now - last >= std::chrono::seconds(introspect_every);
      if (periodic || g_introspect_requested) {
        g_introspect_requested = 0;
        last = now;
        std::cout << cluster.introspect_text();
      }
    }
  });

  Rng rng(cli.get_u64("seed", 1));
  std::atomic<u64> verified{0};
  std::vector<JobId> ids;
  for (u64 j = 0; j < num_jobs; ++j) {
    SortJobSpec spec;
    spec.name = "job" + std::to_string(j);
    spec.mem_records = mem;
    spec.locality_key = "tenant-" + std::to_string(j % tenants);
    spec.priority = static_cast<int>(j % 3);
    const u64 n = (j % 3 + 1) * (mem / 4);
    ids.push_back(cluster.submit<u64>(
        spec, make_keys(static_cast<usize>(n), Dist::kZipf, rng),
        std::less<u64>{}, [&verified](const SortResult<u64>& res) {
          auto v = res.output.read_all();
          for (usize i = 1; i < v.size(); ++i) {
            PDM_CHECK(!(v[i] < v[i - 1]), "cluster output not sorted");
          }
          ++verified;
        }));
  }
  // An extra job whose deadline cannot possibly be met: with admission
  // control off it runs to completion, misses, and its flight ring ends
  // in deadline_miss — the dump below is what a server's bad-end sink
  // would emit.
  JobId miss_id = 0;
  if (force_deadline_miss) {
    SortJobSpec spec;
    spec.name = "forced-deadline-miss";
    spec.mem_records = mem;
    spec.locality_key = "tenant-0";
    spec.deadline_s = 1e-6;
    miss_id = cluster.submit<u64>(
        spec, make_keys(static_cast<usize>(mem / 2), Dist::kZipf, rng),
        std::less<u64>{}, [&verified](const SortResult<u64>& res) {
          auto v = res.output.read_all();
          for (usize i = 1; i < v.size(); ++i) {
            PDM_CHECK(!(v[i] < v[i - 1]), "cluster output not sorted");
          }
          ++verified;
        });
  }
  cluster.drain();
  monitor_stop.store(true);
  monitor.join();
  if (introspect_every > 0) {
    // Final snapshot so short runs (which finish before the first periodic
    // tick) still exercise and show the dump.
    std::cout << cluster.introspect_text();
  }

  if (force_deadline_miss) {
    const JobInfo mj = cluster.info(miss_id);
    std::cout << "\n-- flight dump (forced deadline miss, state="
              << job_state_name(mj.state)
              << " missed=" << (mj.deadline_missed ? 1 : 0) << ") --\n"
              << jobtrace::FlightRecorder::instance().dump_text(mj.trace_id);
  }

  const ClusterStats st = cluster.stats();
  Table t({"shard", "jobs", "done", "failed", "jobs_per_sec", "queue_p99_ms",
           "io_blocks", "peak_mem"});
  for (usize s = 0; s < st.per_shard.size(); ++s) {
    const ServiceStats& ss = st.per_shard[s];
    t.row()
        .cell(u64{s})
        .cell(st.jobs_per_shard[s])
        .cell(ss.completed)
        .cell(ss.failed)
        .cell(ss.jobs_per_sec, 1)
        .cell(ss.queue_p99_s * 1e3, 1)
        .cell(ss.io.total_blocks())
        .cell(fmt_count(ss.peak_memory_bytes) + "B");
  }
  t.print(std::cout);

  // The invariant the stats are built on: shard totals sum exactly to the
  // cluster totals.
  u64 shard_blocks = 0;
  for (const ServiceStats& ss : st.per_shard) {
    shard_blocks += ss.io.total_blocks();
  }
  std::cout << "cluster: " << st.completed << " done, " << st.failed
            << " failed, " << st.rejected << " rejected (" << st.spilled
            << " spilled, " << st.rejected_cluster_wide
            << " cluster-wide); " << verified.load() << " verified\n"
            << "throughput: " << fmt_double(st.jobs_per_sec, 1)
            << " jobs/s; imbalance: jobs "
            << fmt_double(st.job_imbalance, 2) << "x, io "
            << fmt_double(st.io_imbalance, 2) << "x (1.0 = even)\n"
            << "I/O: " << st.io.total_ops() << " parallel ops, "
            << st.io.total_blocks() << " blocks (shard sum " << shard_blocks
            << ": " << (shard_blocks == st.io.total_blocks() ? "exact" : "MISMATCH")
            << ")\n";
  if (print_metrics) {
    std::cout << "\n-- metrics --\n" << cluster.metrics_text();
  }
  if (!trace_out.empty()) {
    if (trace::TraceLog::instance().write_chrome_json(trace_out)) {
      std::cout << "trace: wrote " << trace_out << " ("
                << trace::TraceLog::instance().snapshot().size()
                << " events, " << trace::TraceLog::instance().dropped()
                << " dropped)\n";
    } else {
      std::cerr << "trace: could not write " << trace_out << "\n";
    }
  }
  if (st.failed != 0 || st.rejected != 0 ||
      verified.load() != st.completed ||
      shard_blocks != st.io.total_blocks()) {
    std::cerr << "FAIL: failed=" << st.failed << " rejected=" << st.rejected
              << " verified=" << verified.load() << "/" << st.completed
              << "\n";
    return 1;
  }
  return 0;
}
