// The pass planner as a command-line tool: given a PDM shape (N, M, B,
// alpha) print every algorithm's feasibility, capacity and expected pass
// count, the planner's choice, and the Lemma 2.1 lower bound — i.e. the
// paper's §1 "New Results" list evaluated for *your* machine.
//
//   ./pass_planner --n=100000000 --m=1000000 [--b=1000] [--alpha=2]
#include <iostream>

#include "core/adaptive.h"
#include "util/cli.h"
#include "util/table.h"

using namespace pdm;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const u64 mem = cli.get_u64("m", 1u << 20);
  const u64 b = cli.get_u64("b", isqrt(mem));
  const u64 n = cli.get_u64("n", mem * b);
  const double alpha = cli.get_double("alpha", 1.0);

  std::cout << "PDM shape: N = " << fmt_count(n) << " records, M = "
            << fmt_count(mem) << ", B = " << b << " (alpha = " << alpha
            << ")\n"
            << "Lower bound (Lemma 2.1): "
            << fmt_double(lower_bound_passes_asymptotic(n, mem, b), 2)
            << " passes asymptotic, "
            << fmt_double(lower_bound_passes(n, mem, b), 2)
            << " exact at this M\n\n";

  Table t({"algorithm", "feasible here", "capacity", "expected passes",
           "why / why not"});
  for (const auto& e : plan_options(n, mem, b, alpha)) {
    t.row()
        .cell(algo_name(e.algo))
        .cell(e.feasible)
        .cell(e.capacity == ~u64{0} ? std::string("unbounded")
                                    : fmt_count(e.capacity))
        .cell(e.expected_passes, 2)
        .cell(e.note);
  }
  t.print(std::cout);

  try {
    const PlanEntry choice = choose_plan(n, mem, b, alpha);
    std::cout << "planner choice: " << algo_name(choice.algo) << " ("
              << choice.expected_passes << " expected passes)\n";
  } catch (const Error& e) {
    std::cout << "planner: no feasible algorithm — " << e.what() << "\n";
    return 1;
  }
  return 0;
}
