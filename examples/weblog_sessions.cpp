// Sorting timestamped event records (key + payload) with the expected-
// two-pass algorithm — the scenario the paper's introduction motivates:
// saving even one pass matters when the data is huge, and a 2-pass sort
// that works on (1 - M^-alpha) of inputs is worth having when the rare
// failure costs only a detected +3-pass fallback.
//
// The example sorts synthetic web-log events by timestamp, twice:
// a realistic (random-arrival) log, which finishes in two passes, and an
// adversarial nearly-reverse-chronological log, which trips the on-line
// check and takes the documented fallback — output still correct.
#include <iostream>

#include "core/expected_two_pass.h"
#include "util/cli.h"
#include "util/generators.h"

using namespace pdm;

namespace {

struct LogEvent {
  u64 timestamp_us;
  u32 user_id;
  u16 url_hash;
  u16 status;

  friend auto operator<=>(const LogEvent& a, const LogEvent& b) {
    return a.timestamp_us <=> b.timestamp_us;
  }
  friend bool operator==(const LogEvent&, const LogEvent&) = default;
};
static_assert(sizeof(LogEvent) == 16);

std::vector<LogEvent> make_log(u64 n, bool adversarial, Rng& rng) {
  std::vector<LogEvent> log(static_cast<usize>(n));
  for (usize i = 0; i < log.size(); ++i) {
    // Random arrivals vs (almost) reverse chronological order.
    const u64 ts = adversarial ? (n - i) * 1000 : rng.below(n * 1000);
    log[i] = LogEvent{ts, static_cast<u32>(rng.below(100000)),
                      static_cast<u16>(rng.below(65536)),
                      static_cast<u16>(rng.chance(0.98) ? 200 : 500)};
  }
  return log;
}

void run(const char* label, bool adversarial, u64 mem, u64 n, u32 disks) {
  const u64 block_records = isqrt(mem);
  auto ctx = make_memory_context(disks, block_records * sizeof(LogEvent));
  Rng rng(7);
  auto log = make_log(n, adversarial, rng);
  auto input = write_input_run<LogEvent>(*ctx,
                                         std::span<const LogEvent>(log));
  ctx->io().reset_stats();

  ExpectedTwoPassOptions opt;
  opt.mem_records = mem;
  auto res = expected_two_pass_sort<LogEvent>(*ctx, input, opt);

  auto sorted = res.output.read_all();
  for (usize i = 1; i < sorted.size(); ++i) {
    PDM_CHECK(sorted[i - 1].timestamp_us <= sorted[i].timestamp_us,
              "output not in timestamp order");
  }
  std::cout << label << ": " << n << " events, passes = "
            << res.report.passes
            << (res.report.fallback_taken
                    ? " (displacement check fired -> 3-pass LMM fallback)"
                    : " (clean two-pass run)")
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const u64 mem = cli.get_u64("m", 16384);
  const u32 disks = static_cast<u32>(cli.get_u64("disks", 16));
  const u64 n =
      cli.get_u64("n", round_down(cap_expected_two_pass(mem, 1.0), mem));

  std::cout << "Sorting web-log events by timestamp (M = " << mem
            << " records, B = " << isqrt(mem) << ", D = " << disks
            << "; Theorem 5.1 capacity = "
            << cap_expected_two_pass(mem, 1.0) << ")\n\n";
  run("random arrivals     ", false, mem, n, disks);
  run("reverse chronological", true, mem, n, disks);
  std::cout << "\nBoth outputs verified sorted. The adversarial log costs "
               "the attempt plus three deterministic passes — detected on "
               "line, never silently wrong (paper, section 5).\n";
  return 0;
}
